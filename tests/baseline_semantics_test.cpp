// One suite, every dictionary implementation: the EFRB tree and all baselines
// must agree with std::set sequentially and with the parity oracle
// concurrently. Catching a divergence here localizes bugs to one
// implementation rather than to the shared harness.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "baselines/coarse_bst.hpp"
#include "baselines/cow_bst.hpp"
#include "baselines/finelock_bst.hpp"
#include "baselines/harris_list.hpp"
#include "baselines/locked_map.hpp"
#include "baselines/set_interface.hpp"
#include "baselines/skiplist.hpp"
#include "core/efrb_tree.hpp"
#include "reclaim/hazard.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

/// Sets the stop flag when the scope exits — including early exits from a
/// failed ASSERT_*, which would otherwise leave the churn threads spinning
/// forever and turn the failure into a timeout.
struct StopOnExit {
  std::atomic<bool>& stop;
  ~StopOnExit() { stop.store(true); }
};

template <typename SetT>
class AllSetsTest : public ::testing::Test {};

using AllSets =
    ::testing::Types<EfrbTreeSet<int>, CoarseLockBst<int>, FineLockBst<int>,
                     LockedStdSet<int>, HarrisList<int>, LockFreeSkipList<int>,
                     CowBst<int>>;
TYPED_TEST_SUITE(AllSetsTest, AllSets);

TYPED_TEST(AllSetsTest, ModelsConcurrentSetConcept) {
  static_assert(ConcurrentSet<TypeParam>);
  SUCCEED();
}

TYPED_TEST(AllSetsTest, EmptySetBasics) {
  TypeParam s;
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_TRUE(s.insert(1));
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.insert(1));
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.contains(1));
}

TYPED_TEST(AllSetsTest, SequentialOracleAgreement) {
  TypeParam s;
  std::set<int> oracle;
  Xoshiro256 rng(777);
  for (int i = 0; i < 6000; ++i) {
    const int k = static_cast<int>(rng.next_below(200));
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(s.insert(k), oracle.insert(k).second) << "op " << i;
        break;
      case 1:
        ASSERT_EQ(s.erase(k), oracle.erase(k) != 0) << "op " << i;
        break;
      default:
        ASSERT_EQ(s.contains(k), oracle.count(k) != 0) << "op " << i;
    }
  }
  for (int k = 0; k < 200; ++k) {
    EXPECT_EQ(s.contains(k), oracle.count(k) != 0) << k;
  }
}

TYPED_TEST(AllSetsTest, ConcurrentParityOracle) {
  TypeParam s;
  constexpr int kKeys = 32;
  std::vector<std::atomic<std::uint64_t>> flips(kKeys);
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 3 + 1);
    for (int i = 0; i < 4000; ++i) {
      const int k = static_cast<int>(rng.next_below(kKeys));
      switch (rng.next_below(3)) {
        case 0:
          if (s.insert(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        case 1:
          if (s.erase(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        default:
          s.contains(k);
      }
    }
  });
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(s.contains(k),
              (flips[static_cast<std::size_t>(k)].load() % 2) == 1)
        << TypeParam::kName << " key " << k;
  }
}

TYPED_TEST(AllSetsTest, ConcurrentDisjointStripes) {
  TypeParam s;
  run_threads(4, [&](std::size_t tid) {
    const int base = static_cast<int>(tid) * 100;
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(s.insert(base + i));
    for (int i = 0; i < 100; i += 2) ASSERT_TRUE(s.erase(base + i));
    for (int i = 1; i < 100; i += 2) ASSERT_TRUE(s.contains(base + i));
  });
}

TYPED_TEST(AllSetsTest, InsertEraseSameKeyManyThreads) {
  // All threads fight over one key; at every moment at most one "owns" it.
  TypeParam s;
  std::atomic<std::uint64_t> flips{0};
  run_threads(6, [&](std::size_t tid) {
    Xoshiro256 rng(tid);
    for (int i = 0; i < 3000; ++i) {
      if (rng.next_below(2) == 0) {
        if (s.insert(7)) flips.fetch_add(1);
      } else {
        if (s.erase(7)) flips.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(s.contains(7), (flips.load() % 2) == 1) << TypeParam::kName;
}

// ---------------------------------------------------------------------------
// Map-level suite: every ConcurrentMap model must agree with std::map on the
// full key/value surface (insert / insert_or_assign / replace / get / erase).
// ---------------------------------------------------------------------------

template <typename MapT>
class AllMapsTest : public ::testing::Test {};

using AllMaps =
    ::testing::Types<EfrbTreeMap<int, int>,
                     EfrbTreeMap<int, int, std::less<int>, HazardReclaimer>,
                     LockedStdMap<int, int>>;
TYPED_TEST_SUITE(AllMapsTest, AllMaps);

TYPED_TEST(AllMapsTest, ModelsConcurrentMapConcept) {
  static_assert(ConcurrentMap<TypeParam>);
  static_assert(ConcurrentSet<TypeParam>);  // a map is also usable as a set
  SUCCEED();
}

TYPED_TEST(AllMapsTest, EmptyMapBasics) {
  TypeParam m;
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_FALSE(m.erase(1));
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_EQ(m.get(1), std::optional<int>(10));
  EXPECT_FALSE(m.insert(1, 20));            // no overwrite
  EXPECT_EQ(m.get(1), std::optional<int>(10));
  EXPECT_FALSE(m.insert_or_assign(1, 20));  // assigned, not newly inserted
  EXPECT_EQ(m.get(1), std::optional<int>(20));
  EXPECT_TRUE(m.insert_or_assign(2, 5));    // newly inserted
  EXPECT_TRUE(m.erase(2));
  EXPECT_FALSE(m.replace(1, 99, 30));      // expected mismatch
  EXPECT_EQ(m.get(1), std::optional<int>(20));
  EXPECT_TRUE(m.replace(1, 20, 30));       // value CAS succeeds
  EXPECT_EQ(m.get(1), std::optional<int>(30));
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_FALSE(m.replace(1, 30, 40));      // absent key never replaces
}

TYPED_TEST(AllMapsTest, SequentialMapOracleAgreement) {
  TypeParam m;
  std::map<int, int> oracle;
  Xoshiro256 rng(4242);
  for (int i = 0; i < 6000; ++i) {
    const int k = static_cast<int>(rng.next_below(200));
    const int v = static_cast<int>(rng.next_below(16));
    switch (rng.next_below(5)) {
      case 0:
        ASSERT_EQ(m.insert(k, v), oracle.emplace(k, v).second) << "op " << i;
        break;
      case 1: {
        const bool existed = oracle.count(k) != 0;
        ASSERT_EQ(m.insert_or_assign(k, v), !existed) << "op " << i;
        oracle[k] = v;
        break;
      }
      case 2: {
        const int expected = static_cast<int>(rng.next_below(16));
        auto it = oracle.find(k);
        const bool should = it != oracle.end() && it->second == expected;
        ASSERT_EQ(m.replace(k, expected, v), should) << "op " << i;
        if (should) it->second = v;
        break;
      }
      case 3:
        ASSERT_EQ(m.erase(k), oracle.erase(k) != 0) << "op " << i;
        break;
      default: {
        auto it = oracle.find(k);
        const auto got = m.get(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << "op " << i;
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second) << "op " << i;
        }
      }
    }
  }
  for (const auto& [k, v] : oracle) {
    EXPECT_EQ(m.get(k), std::optional<int>(v)) << k;
  }
}

TYPED_TEST(AllMapsTest, ConcurrentValueIntegrity) {
  // Each thread owns a disjoint key stripe and round-trips values through
  // insert / insert_or_assign / replace; a cross-thread interference bug shows
  // up as a foreign value in someone else's stripe.
  TypeParam m;
  run_threads(4, [&](std::size_t tid) {
    const int base = static_cast<int>(tid) * 1000;
    auto h = make_handle(m);  // generic: handle if available, proxy otherwise
    for (int i = 0; i < 200; ++i) ASSERT_TRUE(m.insert(base + i, base));
    for (int i = 0; i < 200; ++i) {
      ASSERT_FALSE(m.insert_or_assign(base + i, base + 1));  // assigned
      ASSERT_TRUE(m.replace(base + i, base + 1, base + 2));
      ASSERT_EQ(m.get(base + i), std::optional<int>(base + 2));
      ASSERT_TRUE(h.contains(base + i));
    }
    for (int i = 0; i < 200; i += 2) ASSERT_TRUE(m.erase(base + i));
  });
  for (int t = 0; t < 4; ++t) {
    const int base = t * 1000;
    for (int i = 1; i < 200; i += 2) {
      ASSERT_EQ(m.get(base + i), std::optional<int>(base + 2));
    }
  }
}

// ---------------------------------------------------------------------------
// Structure-specific checks.
// ---------------------------------------------------------------------------

TEST(HarrisListTest, KeepsSortedOrderSemantics) {
  HarrisList<int> l;
  for (int k : {5, 1, 9, 3, 7}) EXPECT_TRUE(l.insert(k));
  for (int k : {1, 3, 5, 7, 9}) EXPECT_TRUE(l.contains(k));
  for (int k : {0, 2, 4, 6, 8, 10}) EXPECT_FALSE(l.contains(k));
  EXPECT_EQ(l.size(), 5u);
}

TEST(HarrisListTest, HazardReclamationFreesUnderChurn) {
  HarrisList<int> l;
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid + 5);
    for (int i = 0; i < 8000; ++i) {
      const int k = static_cast<int>(rng.next_below(64));
      if (i % 2 == 0) l.insert(k);
      else l.erase(k);
    }
  });
  EXPECT_GT(l.reclaimer().freed_count(), 1000u)
      << "hazard-pointer scans never freed anything";
}

TEST(SkipListTest, TowersCoverLargeKeyRanges) {
  LockFreeSkipList<int> s;
  for (int k = 0; k < 5000; ++k) ASSERT_TRUE(s.insert(k));
  for (int k = 0; k < 5000; ++k) ASSERT_TRUE(s.contains(k));
  for (int k = 0; k < 5000; k += 2) ASSERT_TRUE(s.erase(k));
  for (int k = 1; k < 5000; k += 2) ASSERT_TRUE(s.contains(k));
  for (int k = 0; k < 5000; k += 2) ASSERT_FALSE(s.contains(k));
  EXPECT_EQ(s.size(), 2500u);
}

TEST(SkipListTest, EpochReclamationFreesUnderChurn) {
  LockFreeSkipList<int> s;
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid + 17);
    for (int i = 0; i < 8000; ++i) {
      const int k = static_cast<int>(rng.next_below(128));
      if (i % 2 == 0) s.insert(k);
      else s.erase(k);
    }
    // Drain this worker's own retire list before it exits: retired entries
    // live in per-thread slots, so without this the freed count at join is
    // schedule-dependent (under sanitizers most frees would only happen at
    // destruction, where nothing can observe them).
    s.reclaimer().flush();
  });
  EXPECT_GT(s.reclaimer().freed_count(), 1000u);
}

TEST(SkipListTest, InsertEraseRaceOnTallTowers) {
  // Repeated insert/erase of the same keys maximizes the upper-level
  // link/snip race the implementation closes with its post-link find();
  // ASan/TSan runs of this test are the regression guard.
  LockFreeSkipList<int> s;
  run_threads(6, [&](std::size_t tid) {
    for (int i = 0; i < 6000; ++i) {
      const int k = (i + static_cast<int>(tid)) % 8;
      if (tid % 2 == 0) s.insert(k);
      else s.erase(k);
    }
  });
  SUCCEED();
}

TEST(FineLockBstTest, LockCouplingSurvivesDeepTrees) {
  FineLockBst<int> t;
  for (int k = 0; k < 2000; ++k) ASSERT_TRUE(t.insert(k));  // path-shaped
  for (int k = 0; k < 2000; ++k) ASSERT_TRUE(t.contains(k));
  for (int k = 1999; k >= 0; --k) ASSERT_TRUE(t.erase(k));
  EXPECT_FALSE(t.contains(0));
}

TEST(CoarseLockBstTest, SizeTracksNetInsertions) {
  CoarseLockBst<int> t;
  for (int k = 0; k < 100; ++k) t.insert(k);
  for (int k = 0; k < 50; ++k) t.erase(k);
  EXPECT_EQ(t.size(), 50u);
}

TEST(CowBstTest, SnapshotReadersSeeConsistentVersions) {
  // A reader captures the root once; churn afterwards must not affect what
  // that traversal sees. We approximate: a reader thread repeatedly verifies
  // a stable pivot while writers churn everything around it — if readers ever
  // walked a half-built version, the pivot could vanish.
  CowBst<int> t;
  t.insert(5000);
  std::atomic<bool> stop{false};
  run_threads(3, [&](std::size_t tid) {
    if (tid == 0) {
      StopOnExit guard{stop};
      for (int i = 0; i < 20000; ++i) ASSERT_TRUE(t.contains(5000));
      stop.store(true);
    } else {
      Xoshiro256 rng(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(rng.next_below(1000));
        t.insert(k);
        t.erase(k);
      }
    }
  });
  EXPECT_TRUE(t.contains(5000));
}

TEST(CowBstTest, PathCopyingSharesUntouchedSubtrees) {
  // Structural smoke via reclamation accounting: updating one key must retire
  // O(depth) nodes, not O(n) — with 2^12 keys, depth ~ 30, so 1000 updates
  // retire well under 2^12 * 1000 nodes.
  CowBst<int> t;
  for (int k = 0; k < 4096; ++k) ASSERT_TRUE(t.insert(k));
  t.reclaimer().flush();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.erase(i));
    ASSERT_TRUE(t.insert(i));
  }
  t.reclaimer().flush();
  EXPECT_EQ(t.size(), 4096u);
}

}  // namespace
}  // namespace efrb
