// Tests for the continuous-telemetry layer: TimeSeriesRing wraparound, the
// reset-safe windowed delta math, MetricsPoller manual and background
// sampling, the runner's poller attachment (live op counters must agree with
// the final result), the key-space heatmap's bucket math, the Zipf-vs-uniform
// concentration property the acceptance criteria pin down, and the
// Prometheus text-exposition writer's grouping/escaping rules.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/efrb_tree.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/timeseries.hpp"
#include "workload/runner.hpp"

namespace efrb {
namespace {

using obs::HeatBucket;
using obs::KeyHeatmap;
using obs::MetricsPoller;
using obs::PollSample;
using obs::PromType;
using obs::PromWriter;
using obs::TimeSeriesRing;
using obs::WindowRates;

// ------------------------------------------------------------ sample ring

TEST(TimeSeriesRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TimeSeriesRing(5).capacity(), 8u);
  EXPECT_EQ(TimeSeriesRing(8).capacity(), 8u);
  EXPECT_EQ(TimeSeriesRing(0).capacity(), 1u);
}

TEST(TimeSeriesRingTest, WraparoundKeepsLatestWindow) {
  TimeSeriesRing ring(4);
  for (std::uint64_t i = 0; i < 11; ++i) {
    PollSample s;
    s.t_ns = i * 100;
    s.ops = i;
    ring.push(s);
  }
  EXPECT_EQ(ring.pushed(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);  // 11 pushed - 4 retained
  const std::vector<PollSample> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  // Oldest first, and exactly the last four pushes.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[i].ops, 7 + i);
    EXPECT_EQ(kept[i].t_ns, (7 + i) * 100);
  }
}

TEST(TimeSeriesRingTest, PartialFillSnapshotsOnlyPushed) {
  TimeSeriesRing ring(8);
  PollSample s;
  s.ops = 42;
  ring.push(s);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<PollSample> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].ops, 42u);
}

// ------------------------------------------------------------- delta math

PollSample sample_at(std::uint64_t t_ns, std::uint64_t ops,
                     std::uint64_t cas_attempts, std::uint64_t cas_failures,
                     std::uint64_t helps, std::uint64_t retired,
                     std::uint64_t freed) {
  PollSample s;
  s.t_ns = t_ns;
  s.ops = ops;
  s.stats.cas_attempts[0] = cas_attempts;
  s.stats.cas_failures[0] = cas_failures;
  s.stats.helps = helps;
  s.gauges.retired_total = retired;
  s.gauges.freed_total = freed;
  return s;
}

TEST(WindowRatesTest, RatesFromConsecutiveSamples) {
  // 0.5 s window: 1000 ops, 200 CAS attempts with 50 failures, 10 helps,
  // 100 retired vs 40 freed (backlog grows by 60).
  const PollSample a = sample_at(1'000'000'000, 5000, 800, 10, 5, 300, 300);
  const PollSample b =
      sample_at(1'500'000'000, 6000, 1000, 60, 15, 400, 340);
  const WindowRates r = obs::rates_between(a, b);
  EXPECT_DOUBLE_EQ(r.window_s, 0.5);
  EXPECT_DOUBLE_EQ(r.ops_per_s, 2000.0);
  EXPECT_DOUBLE_EQ(r.cas_failure_rate, 50.0 / 200.0);
  EXPECT_DOUBLE_EQ(r.helps_per_s, 20.0);
  EXPECT_DOUBLE_EQ(r.retired_per_s, 200.0);
  EXPECT_DOUBLE_EQ(r.freed_per_s, 80.0);
  EXPECT_DOUBLE_EQ(r.backlog_slope, 120.0);  // (60 - 0) / 0.5
}

TEST(WindowRatesTest, CounterResetRestartsDeltaInsteadOfUnderflowing) {
  EXPECT_EQ(obs::monotone_delta(100, 40), 60u);
  // cur < prev: the counter was reset; the delta restarts from cur.
  EXPECT_EQ(obs::monotone_delta(30, 40), 30u);
  EXPECT_EQ(obs::monotone_delta(0, ~std::uint64_t{0}), 0u);

  // A structure swapped out mid-series: every cumulative counter drops. The
  // window must report the new structure's small totals, not 2^64-ish
  // garbage rates.
  const PollSample before =
      sample_at(1'000'000'000, 100000, 5000, 500, 50, 900, 800);
  const PollSample after = sample_at(2'000'000'000, 250, 40, 4, 1, 10, 5);
  const WindowRates r = obs::rates_between(before, after);
  EXPECT_DOUBLE_EQ(r.ops_per_s, 250.0);
  EXPECT_DOUBLE_EQ(r.cas_failure_rate, 4.0 / 40.0);
  EXPECT_DOUBLE_EQ(r.helps_per_s, 1.0);
  EXPECT_DOUBLE_EQ(r.retired_per_s, 10.0);
}

TEST(WindowRatesTest, ZeroLengthOrBackwardsWindowYieldsZeroRates) {
  const PollSample a = sample_at(1000, 10, 0, 0, 0, 0, 0);
  const WindowRates same = obs::rates_between(a, a);
  EXPECT_DOUBLE_EQ(same.ops_per_s, 0.0);
  // Clock went backwards (sample from a reset poller): no garbage.
  const PollSample earlier = sample_at(500, 20, 0, 0, 0, 0, 0);
  const WindowRates back = obs::rates_between(a, earlier);
  EXPECT_DOUBLE_EQ(back.ops_per_s, 0.0);
}

TEST(WindowRatesTest, SeriesHasOneWindowPerConsecutivePair) {
  std::vector<PollSample> samples;
  EXPECT_TRUE(obs::window_rates(samples).empty());
  samples.push_back(sample_at(0, 0, 0, 0, 0, 0, 0));
  EXPECT_TRUE(obs::window_rates(samples).empty());
  samples.push_back(sample_at(1'000'000'000, 100, 0, 0, 0, 0, 0));
  samples.push_back(sample_at(2'000'000'000, 300, 0, 0, 0, 0, 0));
  const std::vector<WindowRates> rates = obs::window_rates(samples);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0].ops_per_s, 100.0);
  EXPECT_DOUBLE_EQ(rates[1].ops_per_s, 200.0);
}

// ----------------------------------------------------------------- poller

TEST(MetricsPollerTest, ManualPollReadsSources) {
  MetricsPoller poller(std::chrono::milliseconds(10), 16);
  std::uint64_t ops = 0;
  poller.set_sources({[&ops] { return ops; }, {}, {}});
  ops = 100;
  poller.poll_once();
  ops = 350;
  poller.poll_once();
  const std::vector<PollSample> samples = poller.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].ops, 100u);
  EXPECT_EQ(samples[1].ops, 350u);
  EXPECT_GE(samples[1].t_ns, samples[0].t_ns);
}

TEST(MetricsPollerTest, BackgroundThreadSamplesAtInterval) {
  MetricsPoller poller(std::chrono::milliseconds(5), 64);
  std::atomic<std::uint64_t> ops{0};
  poller.set_sources(
      {[&ops] { return ops.load(std::memory_order_relaxed); }, {}, {}});
  poller.start();
  EXPECT_TRUE(poller.running());
  for (int i = 0; i < 10; ++i) {
    ops.fetch_add(1000, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  poller.stop();
  EXPECT_FALSE(poller.running());
  // stop() takes a final sample, so at least that one exists; on any
  // non-pathological scheduler several interval ticks fired too.
  EXPECT_GE(poller.samples_pushed(), 2u);
  // Cumulative ops are monotone across the series.
  const std::vector<PollSample> samples = poller.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].ops, samples[i - 1].ops);
    EXPECT_GE(samples[i].t_ns, samples[i - 1].t_ns);
  }
  EXPECT_EQ(samples.back().ops, ops.load());
}

TEST(MetricsPollerTest, StopWithoutStartIsANoop) {
  MetricsPoller poller;
  poller.stop();  // must not crash or sample
  EXPECT_EQ(poller.samples_pushed(), 0u);
}

TEST(MetricsPollerTest, RestartAfterStopKeepsSampling) {
  MetricsPoller poller(std::chrono::milliseconds(5));
  poller.start();
  poller.stop();
  const std::uint64_t after_first = poller.samples_pushed();
  poller.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  poller.stop();
  EXPECT_GT(poller.samples_pushed(), after_first);
}

// ------------------------------------------------- runner + poller wiring

TEST(RunnerPollerTest, FinalSampleOpsMatchesWorkloadResult) {
  // The poller's ops source reads the runner's live per-thread counters;
  // stop() samples after the join, so the last sample must account for
  // every operation the result reports — the end-to-end check that the
  // counting wrapper wraps every access point.
  EfrbTreeSet<std::uint64_t> set;
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.key_range = 1 << 10;
  cfg.duration = std::chrono::milliseconds(60);
  MetricsPoller poller(std::chrono::milliseconds(10));
  const WorkloadResult result =
      run_workload(set, cfg, nullptr, nullptr, &poller);
  const std::vector<PollSample> samples = poller.samples();
  ASSERT_GE(samples.size(), 1u);
  EXPECT_EQ(samples.back().ops, result.total_ops());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].ops, samples[i - 1].ops);
  }
  // Mid-run samples exist and saw partial progress (the window was 6
  // interval lengths; even a slow box lands one tick inside it).
  EXPECT_GE(poller.samples_pushed(), 2u);
}

TEST(RunnerPollerTest, PollerWorksWithTreeLevelPath) {
  EfrbTreeSet<std::uint64_t> set;
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.key_range = 1 << 10;
  cfg.duration = std::chrono::milliseconds(40);
  cfg.use_handles = false;
  MetricsPoller poller(std::chrono::milliseconds(10));
  const WorkloadResult result =
      run_workload(set, cfg, nullptr, nullptr, &poller);
  ASSERT_GE(poller.samples().size(), 1u);
  EXPECT_EQ(poller.samples().back().ops, result.total_ops());
}

// ---------------------------------------------------------------- heatmap

TEST(HeatmapTest, BucketMathCoversRangeAndDropsStrays) {
  KeyHeatmap h(1000, 10);  // width 100
  EXPECT_EQ(h.buckets(), 10u);
  EXPECT_EQ(h.bucket_of(0), 0u);
  EXPECT_EQ(h.bucket_of(99), 0u);
  EXPECT_EQ(h.bucket_of(100), 1u);
  EXPECT_EQ(h.bucket_of(999), 9u);
  // Out of range and the kNoKey sentinel both fall off the end.
  EXPECT_EQ(h.bucket_of(1000), 10u);
  EXPECT_EQ(h.bucket_of(kNoKey), 10u);

  h.record_attempt(5);
  h.record_cas_failure(150);
  h.record_help(150);
  h.record_retry(999);
  h.record_attempt(kNoKey);  // unattributable: counted, never misbinned
  EXPECT_EQ(h.dropped(), 1u);

  const std::vector<HeatBucket> snap = h.snapshot();
  EXPECT_EQ(snap[0].attempts, 1u);
  EXPECT_EQ(snap[1].cas_failures, 1u);
  EXPECT_EQ(snap[1].helps, 1u);
  EXPECT_EQ(snap[1].contended(), 2u);
  EXPECT_EQ(snap[9].retries, 1u);

  h.clear();
  EXPECT_EQ(h.dropped(), 0u);
  for (const HeatBucket& b : h.snapshot()) EXPECT_EQ(b.contended(), 0u);
}

TEST(HeatmapTest, RoundedUpWidthKeepsLastKeyInRange) {
  // range 100 over 64 buckets: width rounds up to 2, so key 99 lands in
  // bucket 49 — never out of bounds.
  KeyHeatmap h(100, 64);
  EXPECT_LT(h.bucket_of(99), h.buckets());
}

TEST(HeatmapTest, AsciiStripScalesWithPeak) {
  std::vector<HeatBucket> buckets(4);
  buckets[0].cas_failures = 100;  // peak -> '@'
  buckets[1].helps = 50;          // half -> mid ramp
  buckets[3].retries = 1;         // nonzero -> visibly not blank
  const std::string strip = KeyHeatmap::ascii_strip(buckets);
  ASSERT_EQ(strip.size(), 4u);
  EXPECT_EQ(strip[0], '@');
  EXPECT_EQ(strip[2], ' ');  // zero stays blank
  EXPECT_NE(strip[1], ' ');
  EXPECT_NE(strip[3], ' ');
  // All-zero input renders all blanks, no division by the zero peak.
  EXPECT_EQ(KeyHeatmap::ascii_strip(std::vector<HeatBucket>(3)), "   ");
}

TEST(HeatmapTest, BucketWidthsSumToRangeOnNonDivisibleGeometry) {
  // range 101 over 64 buckets: nominal width 2, buckets 0..49 cover 2 keys,
  // bucket 50 covers one (key 100), buckets 51..63 cover none.
  KeyHeatmap h(101, 64);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < h.buckets(); ++i) sum += h.bucket_width(i);
  EXPECT_EQ(sum, 101u);
  EXPECT_EQ(h.bucket_width(0), 2u);
  EXPECT_EQ(h.bucket_width(49), 2u);
  EXPECT_EQ(h.bucket_width(50), 1u);
  EXPECT_EQ(h.bucket_width(51), 0u);
  EXPECT_EQ(h.bucket_width(h.buckets()), 0u);  // out of range -> 0

  // Divisible geometry: every bucket covers the same span.
  KeyHeatmap even(1000, 10);
  for (std::size_t i = 0; i < even.buckets(); ++i) {
    EXPECT_EQ(even.bucket_width(i), 100u);
  }
}

TEST(HeatmapTest, UniformStreamRendersFlatStripOnNonDivisibleRange) {
  // The regression this guards: with rounded-up bucketing, the last
  // populated bucket is narrower, so its raw count under a uniform stream is
  // lower — the unnormalized strip rendered it artificially cool. The
  // width-normalized strip() must render every populated bucket at the same
  // intensity and every dead trailing bucket blank.
  KeyHeatmap h(101, 64);
  for (std::uint64_t k = 0; k < 101; ++k) h.record_cas_failure(k);
  const std::string strip = h.strip(h.snapshot());
  ASSERT_EQ(strip.size(), h.buckets());
  for (std::size_t i = 0; i < h.buckets(); ++i) {
    if (h.bucket_width(i) > 0) {
      EXPECT_EQ(strip[i], '@') << "bucket " << i;
    } else {
      EXPECT_EQ(strip[i], ' ') << "bucket " << i;
    }
  }
  // The raw-count strip demonstrates the skew the fix removes: the narrow
  // bucket 50 renders cooler than its equally-hot neighbours.
  const std::string raw = KeyHeatmap::ascii_strip(h.snapshot());
  EXPECT_NE(raw[50], raw[0]);
}

// The acceptance-criteria property: under a Zipfian workload the heatmap
// visibly concentrates in the hot buckets; under uniform it does not.
// ZipfKeys makes low key values hot, so bucket 0 is the hot bucket.
using HeatTree = EfrbTreeSet<std::uint64_t, std::less<std::uint64_t>,
                             EpochReclaimer, obs::HeatmapTraits>;

WorkloadConfig heat_cfg(bool zipf) {
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.key_range = 1 << 12;
  cfg.mix = kUpdateHeavy;
  cfg.zipf = zipf;
  cfg.duration = std::chrono::milliseconds(80);
  return cfg;
}

TEST(HeatmapWorkloadTest, ZipfConcentratesAttemptsUniformDoesNot) {
  KeyHeatmap heat(std::uint64_t{1} << 12);
  obs::HeatmapTraits::install(&heat);

  HeatTree zipf_tree;
  prefill(zipf_tree, 1 << 12, 0.5, 42);
  run_workload(zipf_tree, heat_cfg(true));
  const std::vector<HeatBucket> zipf_snap = heat.snapshot();

  heat.clear();
  HeatTree uni_tree;
  prefill(uni_tree, 1 << 12, 0.5, 42);
  run_workload(uni_tree, heat_cfg(false));
  const std::vector<HeatBucket> uni_snap = heat.snapshot();
  obs::HeatmapTraits::reset();

  auto share0 = [](const std::vector<HeatBucket>& snap) {
    std::uint64_t total = 0;
    for (const HeatBucket& b : snap) total += b.attempts;
    EXPECT_GT(total, 0u);
    return total == 0 ? 0.0
                      : static_cast<double>(snap[0].attempts) /
                            static_cast<double>(total);
  };
  // Zipf(0.99) over 4096 keys puts roughly half the mass on the first
  // 64-key bucket; uniform puts 1/64th (~1.6%) there. The thresholds leave
  // an order of magnitude of slack on each side.
  EXPECT_GT(share0(zipf_snap), 0.20);
  EXPECT_LT(share0(uni_snap), 0.10);
}

TEST(HeatmapWorkloadTest, ZipfContentionLandsInHotBucket) {
  // Contention events (CAS failures, helps, retries) are rare on a 1-CPU
  // box, so accumulate across rounds until there is enough signal, then
  // require the hot bucket to dominate: no other bucket may exceed it.
  KeyHeatmap heat(std::uint64_t{1} << 12);
  obs::HeatmapTraits::install(&heat);
  std::uint64_t contended = 0;
  for (int round = 0; round < 8 && contended < 60; ++round) {
    HeatTree tree;
    prefill(tree, 1 << 12, 0.5, 42 + round);
    run_workload(tree, heat_cfg(true));
    contended = 0;
    for (const HeatBucket& b : heat.snapshot()) contended += b.contended();
  }
  const std::vector<HeatBucket> snap = heat.snapshot();
  obs::HeatmapTraits::reset();
  ASSERT_GT(contended, 0u) << "no contention events in 8 zipf rounds";
  std::uint64_t hot = snap[0].contended();
  std::uint64_t elsewhere_max = 0;
  for (std::size_t i = 1; i < snap.size(); ++i) {
    elsewhere_max = std::max(elsewhere_max, snap[i].contended());
  }
  EXPECT_GE(hot, elsewhere_max)
      << "hot bucket " << hot << " vs max elsewhere " << elsewhere_max
      << " of " << contended << " total";
}

// ------------------------------------------------------------- prometheus

TEST(PromTest, GroupsSamplesUnderOneHelpTypeHeader) {
  PromWriter w;
  w.add("efrb_ops_total", PromType::kCounter, "Ops", {{"cell", "a"}},
        std::uint64_t{1});
  w.add("efrb_mops", PromType::kGauge, "Rate", {}, 2.5);
  // Same metric again, later: must group under the existing header.
  w.add("efrb_ops_total", PromType::kCounter, "Ops", {{"cell", "b"}},
        std::uint64_t{2});
  const std::string out = w.render();
  EXPECT_EQ(out,
            "# HELP efrb_ops_total Ops\n"
            "# TYPE efrb_ops_total counter\n"
            "efrb_ops_total{cell=\"a\"} 1\n"
            "efrb_ops_total{cell=\"b\"} 2\n"
            "# HELP efrb_mops Rate\n"
            "# TYPE efrb_mops gauge\n"
            "efrb_mops 2.5\n");
}

TEST(PromTest, EscapesLabelValues) {
  PromWriter w;
  w.add("efrb_x", PromType::kGauge, "h",
        {{"name", "a\\b\"c\nd"}}, std::uint64_t{1});
  EXPECT_NE(w.render().find("name=\"a\\\\b\\\"c\\nd\""), std::string::npos);
}

TEST(PromTest, EscapesEachSpecialCharacterIndividually) {
  // The exposition rules name exactly three escapes inside a quoted label
  // value; pin each one alone so a regression in one case cannot hide
  // behind the combined string above.
  EXPECT_EQ(obs::prom_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::prom_escape("new\nline"), "new\\nline");
  EXPECT_EQ(obs::prom_escape("quo\"te"), "quo\\\"te");
  // Everything else passes through untouched (incl. tabs and UTF-8 bytes).
  EXPECT_EQ(obs::prom_escape("plain value\t\xc3\xa9"), "plain value\t\xc3\xa9");
}

using PromDeathTest = ::testing::Test;

TEST(PromDeathTest, RejectsMalformedFamilyName) {
  // The grammar assert is the linter golden: a family name outside
  // [a-zA-Z_:][a-zA-Z0-9_:]* must die at add() time, never reach render().
  EXPECT_DEATH(
      {
        PromWriter w;
        w.add("efrb-ops-total", PromType::kCounter, "dashes are invalid", {},
              std::uint64_t{1});
      },
      "invalid Prometheus metric name");
  EXPECT_DEATH(
      {
        PromWriter w;
        w.add("9starts_with_digit", PromType::kGauge, "digit head", {}, 1.0);
      },
      "invalid Prometheus metric name");
}

TEST(PromTest, ValidatesMetricNames) {
  EXPECT_TRUE(obs::valid_prom_name("efrb_ops_total"));
  EXPECT_TRUE(obs::valid_prom_name("_x:y"));
  EXPECT_FALSE(obs::valid_prom_name(""));
  EXPECT_FALSE(obs::valid_prom_name("9lead"));
  EXPECT_FALSE(obs::valid_prom_name("has space"));
  EXPECT_FALSE(obs::valid_prom_name("has-dash"));
}

TEST(PromTest, IntegerCountersRenderExactly) {
  PromWriter w;
  const std::uint64_t big = (std::uint64_t{1} << 60) + 7;
  w.add("efrb_big_total", PromType::kCounter, "h", {}, big);
  EXPECT_NE(w.render().find(std::to_string(big)), std::string::npos);
}

TEST(PromTest, EmissionHelpersPassTheShapeLinter) {
  // Drive the shared helpers with plausible data and lint every line the
  // way scripts/check.sh does: each is a comment or `name{labels} value`.
  PromWriter w;
  const PromWriter::Labels labels{{"cell", "efrb tree"}, {"threads", "4"}};
  WorkloadResult res;
  res.finds = 100;
  res.seconds = 1.0;
  obs::append_result_prom(w, labels, res);
  TreeStats stats;
  stats.cas_attempts[0] = 10;
  obs::append_tree_stats_prom(w, labels, stats);
  ReclaimGauges gauges;
  gauges.retired_total = 5;
  obs::append_gauges_prom(w, labels, gauges);
  WindowRates rates;
  rates.ops_per_s = 123.0;
  obs::append_window_prom(w, labels, rates);
  KeyHeatmap heat(64, 8);
  heat.record_cas_failure(3);
  obs::append_heatmap_prom(w, labels, heat);
  obs::CausalRegistry causal(4);
  causal.record_help(1, pack_owner(0, 7));
  obs::append_causality_prom(w, labels, causal);
  ProgressTable table;
  obs::LivenessWatchdog wd(table);
  obs::append_watchdog_prom(w, labels, wd);

  const std::string out = w.render();
  ASSERT_FALSE(out.empty());
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated last line";
    const std::string line = out.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    // Sample line: metric name, optional {labels}, space, value.
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_TRUE(obs::valid_prom_name(line.substr(0, name_end))) << line;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(line.size(), sp + 1) << line;
  }
}

// ------------------------------------------------------------- metrics v2

TEST(MetricsV2Test, DocumentCarriesTimeseriesAndHeatmapSections) {
  WorkloadConfig cfg;
  WorkloadResult res;
  res.finds = 10;
  res.seconds = 0.1;
  std::vector<PollSample> samples;
  samples.push_back(sample_at(0, 0, 0, 0, 0, 0, 0));
  samples.push_back(sample_at(1'000'000'000, 500, 100, 5, 2, 50, 40));
  KeyHeatmap heat(1 << 10, 16);
  heat.record_attempt(1);
  heat.record_retry(1);

  obs::MetricsDocument doc("timeseries_test");
  doc.add_cell("cell", cfg, res, nullptr, nullptr, nullptr, &samples, &heat);
  const std::string json = doc.finish();

  EXPECT_NE(json.find("\"schema_version\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("\"heatmap\""), std::string::npos);
  EXPECT_NE(json.find("\"strip\""), std::string::npos);
  // The one computed window reports 500 ops over 1 s.
  EXPECT_NE(json.find("\"ops_per_s\":500"), std::string::npos) << json;
}

}  // namespace
}  // namespace efrb
