// Tests for the sharded tree-of-trees front end: routing policies, the
// full map surface through both the tree-level API and per-thread Handles,
// batch ops, handle affinity, cross-shard ordered queries against a
// sequential oracle, telemetry aggregation, and the heatmap-fed shard
// balance report (shard/shard_metrics.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <vector>

#include "core/chromatic.hpp"
#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "leak_check_opt_out.hpp"  // LeakyReclaimer cells leak by design
#include "obs/heatmap.hpp"
#include "reclaim/hazard.hpp"
#include "shard/shard_metrics.hpp"
#include "shard/sharded_map.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

using shard::HashRouter;
using shard::RangeRouter;
using shard::ShardBalanceReport;
using shard::ShardedMap;
using shard::ShardedSet;

/// Range router sized to the tests' key universe (default is 2^16, which
/// would park every small test key in shard 0).
struct TestRangeRouter : RangeRouter {
  TestRangeRouter() noexcept : RangeRouter(/*shards=*/4, /*key_range=*/1024) {}
};

// ---------------------------------------------------------------------------
// Routers.
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, HashRouterIsDeterministicAndInRange) {
  HashRouter r(5);
  EXPECT_EQ(r.shards(), 5u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::size_t s = r.shard_of(k);
    EXPECT_LT(s, 5u);
    EXPECT_EQ(s, r.shard_of(k)) << "routing must be a pure function of key";
  }
}

TEST(ShardRouterTest, HashRouterSpreadsDenseKeys) {
  // Dense ascending keys — the common benchmark shape — must not stripe or
  // pile onto a subset of shards.
  HashRouter r(8);
  std::vector<std::size_t> hits(8, 0);
  for (std::uint64_t k = 0; k < 8000; ++k) hits[r.shard_of(k)]++;
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_GT(hits[s], 500u) << "shard " << s << " starved";
    EXPECT_LT(hits[s], 1500u) << "shard " << s << " overloaded";
  }
}

TEST(ShardRouterTest, RangeRouterMapsContiguousSpansInOrder) {
  RangeRouter r(/*shards=*/4, /*key_range=*/100);  // spans of 25
  EXPECT_EQ(r.shard_of(0), 0u);
  EXPECT_EQ(r.shard_of(24), 0u);
  EXPECT_EQ(r.shard_of(25), 1u);
  EXPECT_EQ(r.shard_of(99), 3u);
  // Out-of-range keys clamp to the last shard instead of being unroutable.
  EXPECT_EQ(r.shard_of(100), 3u);
  EXPECT_EQ(r.shard_of(std::uint64_t{1} << 40), 3u);
  // Monotone: shard index never decreases as keys ascend.
  std::size_t prev = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    const std::size_t s = r.shard_of(k);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(ShardRouterTest, ZeroCountsAreClampedToOne) {
  EXPECT_EQ(HashRouter(0).shards(), 1u);
  EXPECT_EQ(RangeRouter(0, 0).shards(), 1u);
  EXPECT_EQ(RangeRouter(0, 0).shard_of(123), 0u);
}

// ---------------------------------------------------------------------------
// Map surface, both routers, both inner trees.
// ---------------------------------------------------------------------------

template <typename T>
class ShardedSurfaceTest : public ::testing::Test {};

using ShardedConfigs = ::testing::Types<
    ShardedMap<EfrbTreeMap<int, int>>,
    ShardedMap<EfrbTreeMap<int, int>, TestRangeRouter>,
    ShardedMap<ChromaticTreeMap<int, int>>,
    ShardedMap<ChromaticTreeMap<int, int>, TestRangeRouter>,
    ShardedMap<EfrbTreeMap<int, int, std::less<int>, HazardReclaimer>>,
    ShardedMap<ChromaticTreeMap<int, int, std::less<int>, LeakyReclaimer>,
               TestRangeRouter>>;
TYPED_TEST_SUITE(ShardedSurfaceTest, ShardedConfigs);

TYPED_TEST(ShardedSurfaceTest, BasicMapOpsRouteCorrectly) {
  TypeParam m;
  EXPECT_TRUE(m.empty());
  for (int k = 0; k < 200; ++k) EXPECT_TRUE(m.insert(k, k * 10));
  EXPECT_FALSE(m.insert(7, 1)) << "duplicate insert must fail";
  EXPECT_EQ(m.size(), 200u);
  for (int k = 0; k < 200; ++k) {
    ASSERT_TRUE(m.contains(k));
    ASSERT_EQ(m.get(k).value_or(-1), k * 10);
  }
  EXPECT_FALSE(m.contains(200));
  EXPECT_FALSE(m.insert_or_assign(7, 77));  // assigned, not inserted
  EXPECT_EQ(m.get(7).value_or(-1), 77);
  EXPECT_TRUE(m.replace(7, 77, 78));
  EXPECT_FALSE(m.replace(7, 77, 79)) << "stale expected value must fail";
  EXPECT_EQ(m.get_or_insert(7, 0), 78);
  EXPECT_EQ(m.get_or_insert(500, 55), 55);
  EXPECT_TRUE(m.erase(500));
  for (int k = 0; k < 200; k += 2) EXPECT_TRUE(m.erase(k));
  EXPECT_EQ(m.size(), 100u);
  const auto v = m.validate();
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.shards, m.shard_count());
  EXPECT_EQ(v.real_leaves, 100u);
}

TYPED_TEST(ShardedSurfaceTest, HandleSurfaceMatchesTreeSurface) {
  TypeParam m;
  auto h = m.handle();
  for (int k = 0; k < 100; ++k) EXPECT_TRUE(h.insert(k, k));
  EXPECT_FALSE(h.insert(3, 9));
  EXPECT_TRUE(h.contains(50));
  EXPECT_EQ(h.get(50).value_or(-1), 50);
  EXPECT_FALSE(h.insert_or_assign(50, 5));
  EXPECT_TRUE(h.replace(50, 5, 6));
  EXPECT_EQ(h.get_or_insert(50, 0), 6);
  EXPECT_TRUE(h.erase(50));
  EXPECT_FALSE(h.erase(50));
  // Tree-level view sees the handle's writes (same shards underneath).
  EXPECT_EQ(m.size(), 99u);
  EXPECT_FALSE(m.contains(50));
  h.flush();
  h.detach();
  EXPECT_FALSE(h.valid());
}

TYPED_TEST(ShardedSurfaceTest, HandleIsMovable) {
  TypeParam m;
  auto a = m.handle();
  EXPECT_TRUE(a.insert(1, 1));
  auto b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(b.contains(1));
  a = std::move(b);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a.erase(1));
}

TYPED_TEST(ShardedSurfaceTest, MultiGetAndMultiInsertAnswerInInputOrder) {
  TypeParam m;
  auto h = m.handle();
  std::vector<std::pair<int, int>> kvs;
  for (int k = 63; k >= 0; --k) kvs.emplace_back(k, k + 1000);
  kvs.emplace_back(63, 0);  // duplicate of an earlier batch entry
  const std::vector<bool> ins = h.multi_insert(kvs);
  ASSERT_EQ(ins.size(), kvs.size());
  for (std::size_t i = 0; i + 1 < ins.size(); ++i) {
    EXPECT_TRUE(ins[i]) << "fresh key at " << i;
  }
  EXPECT_FALSE(ins.back()) << "duplicate in the same batch must fail";

  std::vector<int> keys = {5, 200, 63, 0, 31};
  const auto got = h.multi_get(keys);
  ASSERT_EQ(got.size(), keys.size());
  EXPECT_EQ(got[0].value_or(-1), 1005);
  EXPECT_FALSE(got[1].has_value());
  EXPECT_EQ(got[2].value_or(-1), 1063);
  EXPECT_EQ(got[3].value_or(-1), 1000);
  EXPECT_EQ(got[4].value_or(-1), 1031);

  // Tree-level batch helpers agree.
  const auto got2 = m.multi_get(keys);
  ASSERT_EQ(got2.size(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got2[i], got[i]);
}

// ---------------------------------------------------------------------------
// Handle affinity: inner handles attach lazily, per touched shard.
// ---------------------------------------------------------------------------

TEST(ShardedHandleTest, AttachesOnlyTouchedShards) {
  ShardedMap<EfrbTreeMap<int, int>, TestRangeRouter> m;  // 4 shards of 256
  auto h = m.handle();
  EXPECT_EQ(h.attached_shards(), 0u);
  h.insert(10, 1);  // shard 0
  EXPECT_EQ(h.attached_shards(), 1u);
  h.insert(20, 2);  // still shard 0
  EXPECT_EQ(h.attached_shards(), 1u);
  h.insert(300, 3);  // shard 1
  EXPECT_EQ(h.attached_shards(), 2u);
  h.contains(999);  // shard 3 — reads attach too (they pin the reclaimer)
  EXPECT_EQ(h.attached_shards(), 3u);
}

TEST(ShardedHandleTest, RangePinnedThreadsConsumeOneInnerSlotEach) {
  // The affinity payoff: handle capacity is a per-shard budget. Give each
  // inner tree a reclaimer sized for 2 attachments and run 4 threads, each
  // pinned to its own range shard — possible only if a thread attaches
  // nowhere outside its shard.
  using Inner = EfrbTreeMap<int, int>;
  ShardedMap<Inner, TestRangeRouter> m;
  run_threads(4, [&](std::size_t tid) {
    auto h = m.handle();
    const int base = static_cast<int>(tid) * 256;  // this thread's span
    for (int i = 0; i < 100; ++i) h.insert(base + i, i);
    EXPECT_EQ(h.attached_shards(), 1u) << "thread strayed off its shard";
  });
  EXPECT_EQ(m.size(), 400u);
}

// ---------------------------------------------------------------------------
// Cross-shard ordered queries vs a sequential oracle.
// ---------------------------------------------------------------------------

template <typename T>
class ShardedOrderedTest : public ::testing::Test {};

using OrderedConfigs = ::testing::Types<
    ShardedMap<EfrbTreeMap<int, int>>,
    ShardedMap<EfrbTreeMap<int, int>, TestRangeRouter>,
    ShardedMap<ChromaticTreeMap<int, int>>,
    ShardedMap<ChromaticTreeMap<int, int>, TestRangeRouter>>;
TYPED_TEST_SUITE(ShardedOrderedTest, OrderedConfigs);

TYPED_TEST(ShardedOrderedTest, OrderedTierMatchesStdMapOracle) {
  TypeParam m;
  std::map<int, int> oracle;
  Xoshiro256 rng(42);
  for (int i = 0; i < 600; ++i) {
    const int k = static_cast<int>(rng.next_below(1024));
    if (rng.next_below(4) == 0) {
      EXPECT_EQ(m.erase(k), oracle.erase(k) == 1u);
    } else {
      const int v = static_cast<int>(rng.next_below(100));
      EXPECT_EQ(m.insert(k, v), oracle.emplace(k, v).second);
    }
  }
  ASSERT_EQ(m.size(), oracle.size());

  // min/max and the four directional probes.
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(m.min_key().value(), oracle.begin()->first);
  EXPECT_EQ(m.max_key().value(), oracle.rbegin()->first);
  for (int probe : {-1, 0, 100, 511, 512, 1023, 1024}) {
    auto ge = oracle.lower_bound(probe);
    EXPECT_EQ(m.find_ge(probe),
              ge == oracle.end() ? std::nullopt : std::optional<int>(ge->first))
        << "find_ge(" << probe << ")";
    auto gt = oracle.upper_bound(probe);
    EXPECT_EQ(m.find_gt(probe),
              gt == oracle.end() ? std::nullopt : std::optional<int>(gt->first))
        << "find_gt(" << probe << ")";
    auto le = oracle.upper_bound(probe);
    EXPECT_EQ(m.find_le(probe), le == oracle.begin()
                                    ? std::nullopt
                                    : std::optional<int>(std::prev(le)->first))
        << "find_le(" << probe << ")";
    auto lt = oracle.lower_bound(probe);
    EXPECT_EQ(m.find_lt(probe), lt == oracle.begin()
                                    ? std::nullopt
                                    : std::optional<int>(std::prev(lt)->first))
        << "find_lt(" << probe << ")";
  }

  // for_each must emit the whole map in globally ascending key order even
  // when hash sharding interleaves the per-shard runs.
  std::vector<std::pair<int, int>> emitted;
  m.for_each([&](int k, int v) { emitted.emplace_back(k, v); });
  ASSERT_EQ(emitted.size(), oracle.size());
  auto it = oracle.begin();
  for (std::size_t i = 0; i < emitted.size(); ++i, ++it) {
    ASSERT_EQ(emitted[i].first, it->first) << "order diverges at " << i;
    ASSERT_EQ(emitted[i].second, it->second);
  }

  // range / count_range over a few windows, via tree and handle both.
  auto h = m.handle();
  const std::pair<int, int> windows[] = {{0, 1023}, {100, 400}, {512, 512},
                                         {700, 699}, {-5, 2000}};
  for (const auto& [lo, hi] : windows) {
    std::vector<int> want;
    for (auto j = oracle.lower_bound(lo);
         j != oracle.end() && j->first <= hi; ++j) {
      want.push_back(j->first);
    }
    std::vector<int> tree_got, handle_got;
    m.range(lo, hi, [&](int k, int) { tree_got.push_back(k); });
    h.range(lo, hi, [&](int k, int) { handle_got.push_back(k); });
    EXPECT_EQ(tree_got, want) << "range [" << lo << ", " << hi << "]";
    EXPECT_EQ(handle_got, want);
    EXPECT_EQ(m.count_range(lo, hi), want.size());
    EXPECT_EQ(h.count_range(lo, hi), want.size());
  }
}

// ---------------------------------------------------------------------------
// Telemetry aggregation.
// ---------------------------------------------------------------------------

TEST(ShardedTelemetryTest, StatsAndGaugesFoldPerShardViews) {
  using M = ShardedMap<EfrbTreeMap<int, int, std::less<int>, EpochReclaimer,
                                   StatsTraits>>;
  M m;
  {
    auto h = m.handle();
    for (int k = 0; k < 400; ++k) h.insert(k, k);
    for (int k = 0; k < 400; k += 2) h.erase(k);
    h.flush();
  }
  // The fold must equal the sum of the per-shard views it folds.
  TreeStats sum;
  ReclaimGauges gsum;
  for (std::size_t s = 0; s < m.shard_count(); ++s) {
    accumulate(sum, m.shard_stats(s));
    const ReclaimGauges g = m.shard_gauges(s);
    gsum.retired_total += g.retired_total;
    gsum.freed_total += g.freed_total;
  }
  const TreeStats folded = m.stats_snapshot();
  EXPECT_EQ(folded.insert_attempts, sum.insert_attempts);
  EXPECT_EQ(folded.delete_attempts, sum.delete_attempts);
  EXPECT_GE(folded.insert_attempts, 400u);
  EXPECT_GE(folded.delete_attempts, 200u);
  const ReclaimGauges g = m.gauges();
  EXPECT_EQ(g.retired_total, gsum.retired_total);
  EXPECT_EQ(g.freed_total, gsum.freed_total);
  EXPECT_GT(g.retired_total, 0u) << "erases must retire through the shards";
}

// ---------------------------------------------------------------------------
// Shard balance report (heatmap -> router attribution).
// ---------------------------------------------------------------------------

TEST(ShardBalanceTest, RangeRouterAttributesHotSpanToItsShard) {
  obs::KeyHeatmap h(1024, 64);
  // All load in [0, 256): shard 0 of the 4-shard range router.
  for (std::uint64_t k = 0; k < 256; ++k) {
    for (int i = 0; i < 4; ++i) h.record_attempt(k);
    h.record_cas_failure(k);
  }
  const TestRangeRouter router;
  const ShardBalanceReport rep =
      shard::score_shard_map(router, h, {}, h.snapshot());
  ASSERT_EQ(rep.shards(), 4u);
  EXPECT_EQ(rep.total_attempts, 1024u);
  EXPECT_EQ(rep.total_contended, 256u);
  EXPECT_EQ(rep.hottest(), 0u);
  EXPECT_EQ(rep.per_shard[0].attempts, 1024u);
  EXPECT_EQ(rep.per_shard[1].attempts, 0u);
  EXPECT_DOUBLE_EQ(rep.share(0), 1.0);
  EXPECT_DOUBLE_EQ(rep.imbalance(), 4.0);  // all load on 1 of 4 shards
  EXPECT_FALSE(rep.balanced());
}

TEST(ShardBalanceTest, HashRouterSpreadsTheSameHotSpan) {
  obs::KeyHeatmap h(1024, 64);
  for (std::uint64_t k = 0; k < 256; ++k) h.record_attempt(k);
  const HashRouter router(4);
  const ShardBalanceReport rep =
      shard::score_shard_map(router, h, {}, h.snapshot());
  EXPECT_EQ(rep.total_attempts, 256u) << "attribution must conserve totals";
  std::uint64_t sum = 0;
  for (const auto& s : rep.per_shard) sum += s.attempts;
  EXPECT_EQ(sum, rep.total_attempts);
  EXPECT_LT(rep.imbalance(), 2.0) << "hash sharding left the span on few "
                                     "shards";
}

TEST(ShardBalanceTest, WindowDeltaIgnoresLoadBeforePrevSnapshot) {
  obs::KeyHeatmap h(1024, 64);
  for (std::uint64_t k = 0; k < 1024; ++k) h.record_attempt(k);
  const auto prev = h.snapshot();
  for (int i = 0; i < 10; ++i) h.record_attempt(700);  // shard 2's span
  const TestRangeRouter router;
  const ShardBalanceReport rep =
      shard::score_shard_map(router, h, prev, h.snapshot());
  EXPECT_EQ(rep.total_attempts, 10u);
  EXPECT_EQ(rep.hottest(), 2u);
  EXPECT_EQ(rep.per_shard[2].attempts, 10u);
}

TEST(ShardBalanceTest, EmptyWindowReportsBalanced) {
  obs::KeyHeatmap h(1024, 64);
  const ShardBalanceReport rep =
      shard::score_shard_map(HashRouter(8), h, {}, h.snapshot());
  EXPECT_EQ(rep.total_attempts, 0u);
  EXPECT_DOUBLE_EQ(rep.imbalance(), 1.0);
  EXPECT_TRUE(rep.balanced());
}

// ---------------------------------------------------------------------------
// Concurrent storm: per-shard reclaimers under real contention. ASan builds
// turn any cross-shard reclamation bug into a hard failure.
// ---------------------------------------------------------------------------

template <typename T>
class ShardedStormTest : public ::testing::Test {};

using StormConfigs = ::testing::Types<
    ShardedMap<EfrbTreeMap<int, int>>,
    ShardedMap<ChromaticTreeMap<int, int>, TestRangeRouter>,
    ShardedMap<EfrbTreeMap<int, int, std::less<int>, HazardReclaimer>,
               TestRangeRouter>,
    ShardedMap<ChromaticTreeMap<int, int, std::less<int>, HazardReclaimer>>>;
TYPED_TEST_SUITE(ShardedStormTest, StormConfigs);

TYPED_TEST(ShardedStormTest, MixedOpsAcrossShardsKeepEveryShardValid) {
  TypeParam m;
  constexpr int kThreads = 6;
  constexpr int kOps = 3000;
  constexpr std::uint64_t kRange = 1024;
  std::atomic<std::uint64_t> inserted{0}, erased{0};
  run_threads(kThreads, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 977 + 11);
    auto h = m.handle();
    for (int i = 0; i < kOps; ++i) {
      const int k = static_cast<int>(rng.next_below(kRange));
      switch (rng.next_below(4)) {
        case 0:
          if (h.insert(k, k)) inserted.fetch_add(1);
          break;
        case 1:
          if (h.erase(k)) erased.fetch_add(1);
          break;
        case 2:
          h.contains(k);
          break;
        default:
          h.get(k);
      }
    }
    h.flush();
  });
  const auto v = m.validate();
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(m.size(), inserted.load() - erased.load());
  // Every key the structure reports must be found through the router too.
  std::size_t walked = 0;
  m.for_each([&](int k, int) {
    ASSERT_TRUE(m.contains(k));
    ++walked;
  });
  EXPECT_EQ(walked, m.size());
}

}  // namespace
}  // namespace efrb
