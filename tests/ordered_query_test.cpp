// Ordered navigation: find_ge / find_gt / find_le / find_lt, range() and
// count_range() — checked against std::set's lower_bound/upper_bound oracle
// across randomized sweeps, plus weak-consistency smoke under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

using Tree = EfrbTreeSet<int>;

std::optional<int> oracle_ge(const std::set<int>& s, int k) {
  auto it = s.lower_bound(k);
  if (it == s.end()) return std::nullopt;
  return *it;
}
std::optional<int> oracle_gt(const std::set<int>& s, int k) {
  auto it = s.upper_bound(k);
  if (it == s.end()) return std::nullopt;
  return *it;
}
std::optional<int> oracle_le(const std::set<int>& s, int k) {
  auto it = s.upper_bound(k);
  if (it == s.begin()) return std::nullopt;
  return *std::prev(it);
}
std::optional<int> oracle_lt(const std::set<int>& s, int k) {
  auto it = s.lower_bound(k);
  if (it == s.begin()) return std::nullopt;
  return *std::prev(it);
}

TEST(OrderedQueryTest, EmptyTreeReturnsNullopt) {
  Tree t;
  EXPECT_EQ(t.find_ge(5), std::nullopt);
  EXPECT_EQ(t.find_gt(5), std::nullopt);
  EXPECT_EQ(t.find_le(5), std::nullopt);
  EXPECT_EQ(t.find_lt(5), std::nullopt);
  EXPECT_EQ(t.count_range(0, 100), 0u);
}

TEST(OrderedQueryTest, SingleKeyBoundaries) {
  Tree t;
  t.insert(10);
  EXPECT_EQ(t.find_ge(10), std::optional<int>(10));
  EXPECT_EQ(t.find_gt(10), std::nullopt);
  EXPECT_EQ(t.find_le(10), std::optional<int>(10));
  EXPECT_EQ(t.find_lt(10), std::nullopt);
  EXPECT_EQ(t.find_ge(9), std::optional<int>(10));
  EXPECT_EQ(t.find_le(11), std::optional<int>(10));
  EXPECT_EQ(t.find_ge(11), std::nullopt);
  EXPECT_EQ(t.find_le(9), std::nullopt);
}

TEST(OrderedQueryTest, GapsAreBridged) {
  Tree t;
  for (int k : {10, 20, 30}) t.insert(k);
  EXPECT_EQ(t.find_ge(15), std::optional<int>(20));
  EXPECT_EQ(t.find_gt(20), std::optional<int>(30));
  EXPECT_EQ(t.find_le(25), std::optional<int>(20));
  EXPECT_EQ(t.find_lt(20), std::optional<int>(10));
  EXPECT_EQ(t.find_ge(31), std::nullopt);
  EXPECT_EQ(t.find_lt(10), std::nullopt);
}

TEST(OrderedQueryTest, BoundsBelowAllAndAboveAll) {
  Tree t;
  for (int k = 100; k <= 200; k += 10) t.insert(k);
  EXPECT_EQ(t.find_ge(-1000), std::optional<int>(100));
  EXPECT_EQ(t.find_le(1000), std::optional<int>(200));
  EXPECT_EQ(t.find_gt(200), std::nullopt);
  EXPECT_EQ(t.find_lt(100), std::nullopt);
}

class OrderedQuerySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderedQuerySweep, AllFourBoundsMatchStdSet) {
  const std::uint64_t seed = GetParam();
  Tree t;
  std::set<int> oracle;
  Xoshiro256 rng(seed);
  // Random population with churn, probing all four bounds continuously.
  for (int i = 0; i < 4000; ++i) {
    const int k = static_cast<int>(rng.next_below(512));
    if (rng.next_below(3) == 0) {
      t.erase(k);
      oracle.erase(k);
    } else {
      t.insert(k);
      oracle.insert(k);
    }
    const int probe = static_cast<int>(rng.next_below(512));
    ASSERT_EQ(t.find_ge(probe), oracle_ge(oracle, probe)) << "probe " << probe;
    ASSERT_EQ(t.find_gt(probe), oracle_gt(oracle, probe)) << "probe " << probe;
    ASSERT_EQ(t.find_le(probe), oracle_le(oracle, probe)) << "probe " << probe;
    ASSERT_EQ(t.find_lt(probe), oracle_lt(oracle, probe)) << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedQuerySweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RangeQueryTest, EmptyAndDegenerateIntervals) {
  Tree t;
  for (int k : {10, 20, 30}) t.insert(k);
  EXPECT_EQ(t.count_range(21, 29), 0u);
  EXPECT_EQ(t.count_range(20, 20), 1u);  // single point
  EXPECT_EQ(t.count_range(25, 15), 0u);  // inverted: empty by definition
}

TEST(RangeQueryTest, InclusiveBothEnds) {
  Tree t;
  for (int k = 0; k < 100; ++k) t.insert(k);
  EXPECT_EQ(t.count_range(10, 19), 10u);
  EXPECT_EQ(t.count_range(0, 99), 100u);
  EXPECT_EQ(t.count_range(-5, 4), 5u);
  EXPECT_EQ(t.count_range(95, 200), 5u);
}

TEST(RangeQueryTest, VisitsInOrderWithValues) {
  EfrbTreeMap<int, int> m;
  for (int k : {5, 1, 9, 3, 7}) m.insert(k, k * 10);
  std::vector<std::pair<int, int>> seen;
  m.range(2, 8, [&](const int& k, const int& v) { seen.emplace_back(k, v); });
  EXPECT_EQ(seen, (std::vector<std::pair<int, int>>{{3, 30}, {5, 50}, {7, 70}}));
}

TEST(RangeQueryTest, MatchesOracleOnRandomSets) {
  Tree t;
  std::set<int> oracle;
  Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const int k = static_cast<int>(rng.next_below(1000));
    t.insert(k);
    oracle.insert(k);
  }
  for (int i = 0; i < 200; ++i) {
    int lo = static_cast<int>(rng.next_below(1000));
    int hi = static_cast<int>(rng.next_below(1000));
    if (lo > hi) std::swap(lo, hi);
    const auto expected = static_cast<std::size_t>(
        std::distance(oracle.lower_bound(lo), oracle.upper_bound(hi)));
    ASSERT_EQ(t.count_range(lo, hi), expected) << "[" << lo << "," << hi << "]";
  }
}

TEST(RangeQueryTest, PruningSkipsSentinelSpine) {
  // A range query touching the top of the key space must not visit the ∞
  // sentinels (they would appear as garbage keys if ever reported).
  Tree t;
  t.insert(INT32_MAX);
  t.insert(INT32_MAX - 1);
  std::vector<int> seen;
  t.range(INT32_MAX - 2, INT32_MAX,
          [&](const int& k, const auto&) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<int>{INT32_MAX - 1, INT32_MAX}));
}

// ---------------------------------------------------------------------------
// Handle fast path: every ordered query is also a Handle method (pinning
// through the handle's attachment instead of the thread_local lease).
// ---------------------------------------------------------------------------

TEST(OrderedQueryHandleTest, AllQueriesMatchTreeLevel) {
  Tree t;
  auto h = t.handle();
  for (int k : {10, 20, 30, 40}) ASSERT_TRUE(h.insert(k));
  EXPECT_EQ(h.min_key(), std::optional<int>(10));
  EXPECT_EQ(h.max_key(), std::optional<int>(40));
  EXPECT_EQ(h.find_ge(15), t.find_ge(15));
  EXPECT_EQ(h.find_gt(20), t.find_gt(20));
  EXPECT_EQ(h.find_le(25), t.find_le(25));
  EXPECT_EQ(h.find_lt(20), t.find_lt(20));
  EXPECT_EQ(h.find_gt(40), std::nullopt);
  EXPECT_EQ(h.count_range(15, 35), 2u);
  std::vector<int> ranged;
  h.range(15, 45, [&](const int& k, const auto&) { ranged.push_back(k); });
  EXPECT_EQ(ranged, (std::vector<int>{20, 30, 40}));
  std::vector<int> all;
  h.for_each([&](const int& k, const auto&) { all.push_back(k); });
  EXPECT_EQ(all, (std::vector<int>{10, 20, 30, 40}));
}

TEST(OrderedQueryHandleTest, SweepMatchesStdSetOracle) {
  Tree t;
  auto h = t.handle();
  std::set<int> oracle;
  Xoshiro256 rng(21);
  for (int i = 0; i < 2000; ++i) {
    const int k = static_cast<int>(rng.next_below(512));
    if (rng.next_below(3) == 0) {
      h.erase(k);
      oracle.erase(k);
    } else {
      h.insert(k);
      oracle.insert(k);
    }
    const int probe = static_cast<int>(rng.next_below(512));
    ASSERT_EQ(h.find_ge(probe), oracle_ge(oracle, probe)) << "probe " << probe;
    ASSERT_EQ(h.find_gt(probe), oracle_gt(oracle, probe)) << "probe " << probe;
    ASSERT_EQ(h.find_le(probe), oracle_le(oracle, probe)) << "probe " << probe;
    ASSERT_EQ(h.find_lt(probe), oracle_lt(oracle, probe)) << "probe " << probe;
    ASSERT_EQ(h.min_key(), oracle.empty()
                               ? std::nullopt
                               : std::optional<int>(*oracle.begin()));
    ASSERT_EQ(h.max_key(), oracle.empty()
                               ? std::nullopt
                               : std::optional<int>(*oracle.rbegin()));
  }
}

TEST(OrderedQueryHandleTest, MovedFromHandleStaysUsableAfterMoveTarget) {
  Tree t;
  auto h1 = t.handle();
  ASSERT_TRUE(h1.insert(5));
  Tree::Handle h2 = std::move(h1);
  EXPECT_TRUE(h2.valid());
  EXPECT_EQ(h2.min_key(), std::optional<int>(5));
  EXPECT_EQ(h2.count_range(0, 10), 1u);
}

// ---------------------------------------------------------------------------
// Weak consistency under concurrency.
// ---------------------------------------------------------------------------

/// Sets the stop flag when the reader scope exits — including early exits
/// from a failed ASSERT_*, which would otherwise leave the churn threads
/// spinning forever and turn a test failure into a timeout.
struct StopOnExit {
  std::atomic<bool>& stop;
  ~StopOnExit() { stop.store(true); }
};

TEST(OrderedQueryConcurrentTest, StableRegionIsAlwaysReported) {
  // Keys 1000..1009 are permanent; churn happens strictly below 900. Queries
  // probing from WITHIN the quiet gap (900, 1000) or above the stable region
  // must see exactly the stable keys. (A probe from below the churn region,
  // e.g. find_ge(600), could legitimately return a transiently present churn
  // key — that is the documented weak consistency, not a bug.)
  Tree t;
  for (int k = 1000; k < 1010; ++k) t.insert(k);
  std::atomic<bool> stop{false};
  run_threads(4, [&](std::size_t tid) {
    if (tid == 0) {
      StopOnExit guard{stop};
      for (int i = 0; i < 4000; ++i) {
        ASSERT_EQ(t.count_range(1000, 1009), 10u);
        ASSERT_EQ(t.find_ge(950), std::optional<int>(1000));  // gap is quiet
        ASSERT_EQ(t.find_le(1500), std::optional<int>(1009));
        ASSERT_EQ(t.find_gt(1009), std::nullopt);  // no keys exist above 1009
      }
    } else if (tid == 1) {
      Xoshiro256 rng(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(rng.next_below(500));
        t.insert(k);
        t.erase(k);
      }
    } else {
      Xoshiro256 rng(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = 700 + static_cast<int>(rng.next_below(200));
        t.insert(k);
        t.erase(k);
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);
}

TEST(OrderedQueryConcurrentTest, BoundsNeverInventKeys) {
  // Churn over even keys only; bounds must never report an odd key (odd keys
  // are never inserted), and reported keys must lie on the queried side.
  Tree t;
  std::atomic<bool> stop{false};
  run_threads(3, [&](std::size_t tid) {
    if (tid == 0) {
      StopOnExit guard{stop};
      Xoshiro256 rng(7);
      for (int i = 0; i < 8000; ++i) {
        const int probe = static_cast<int>(rng.next_below(512));
        if (const auto g = t.find_ge(probe)) {
          ASSERT_EQ(*g % 2, 0) << "invented key";
          ASSERT_GE(*g, probe);
        }
        if (const auto l = t.find_le(probe)) {
          ASSERT_EQ(*l % 2, 0) << "invented key";
          ASSERT_LE(*l, probe);
        }
      }
    } else {
      Xoshiro256 rng(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(rng.next_below(256)) * 2;
        t.insert(k);
        t.erase(k);
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);
}

TEST(OrderedQueryConcurrentTest, HandleQueriesUnderChurn) {
  // Same stable-region argument as above, but every thread — reader and
  // churners alike — drives the tree through its own Handle.
  Tree t;
  for (int k = 1000; k < 1010; ++k) t.insert(k);
  std::atomic<bool> stop{false};
  run_threads(4, [&](std::size_t tid) {
    auto h = t.handle();
    if (tid == 0) {
      StopOnExit guard{stop};
      for (int i = 0; i < 4000; ++i) {
        ASSERT_EQ(h.count_range(1000, 1009), 10u);
        ASSERT_EQ(h.find_ge(950), std::optional<int>(1000));
        ASSERT_EQ(h.find_le(1500), std::optional<int>(1009));
        ASSERT_EQ(h.max_key(), std::optional<int>(1009));
      }
    } else {
      Xoshiro256 rng(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(rng.next_below(500));
        h.insert(k);
        h.erase(k);
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);
}

}  // namespace
}  // namespace efrb
