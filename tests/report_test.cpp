// Tests for the benchmark table printer (workload/report.hpp): alignment,
// formatting, and robustness to ragged rows — the experiment binaries' output
// contract that EXPERIMENTS.md quotes.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/report.hpp"

namespace efrb {
namespace {

std::string render(const Table& table) {
  std::FILE* f = std::tmpfile();
  table.print(f);
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

TEST(TableTest, HeaderAndSeparatorPresent) {
  Table t({"alpha", "beta"});
  t.add_row({"1", "2"});
  const std::string out = render(t);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(TableTest, ColumnsAlignAcrossRows) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  const std::string out = render(t);
  // Find the column offset of "value" in the header; "1" and "22" must start
  // at the same offset on their rows.
  std::size_t line_start = 0;
  std::vector<std::string> lines;
  for (std::size_t i = 0; i <= out.size(); ++i) {
    if (i == out.size() || out[i] == '\n') {
      lines.push_back(out.substr(line_start, i - line_start));
      line_start = i + 1;
    }
  }
  ASSERT_GE(lines.size(), 4u);
  const std::size_t value_col = lines[0].find("value");
  EXPECT_EQ(lines[2].find('1'), value_col);
  EXPECT_EQ(lines[3].find("22"), value_col);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 0), "3");
  EXPECT_EQ(Table::fmt(1234.5, 1), "1234.5");
  EXPECT_EQ(Table::fmt(0.0, 2), "0.00");
}

TEST(TableTest, EmptyTablePrintsHeaderOnly) {
  Table t({"only", "headers"});
  const std::string out = render(t);
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(out.find("no such cell"), std::string::npos);
}

TEST(TableTest, RaggedRowsDoNotCrash) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});            // fewer cells than headers
  t.add_row({"1", "2", "3"});
  const std::string out = render(t);
  EXPECT_NE(out.find('3'), std::string::npos);
}

// Regression: a row with MORE cells than headers used to index widths[c]
// past its end (print_row iterated over row.size(), widths has header.size()
// entries) — an out-of-bounds read. Extra cells must print, unpadded.
TEST(TableTest, RowsWiderThanHeadersPrintAllCells) {
  Table t({"a", "b"});
  t.add_row({"1", "2", "surplus", "more"});
  t.add_row({"x", "y"});
  const std::string out = render(t);
  EXPECT_NE(out.find("surplus"), std::string::npos);
  EXPECT_NE(out.find("more"), std::string::npos);
  EXPECT_NE(out.find('y'), std::string::npos);
}

}  // namespace
}  // namespace efrb
