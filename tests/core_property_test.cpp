// Property-based sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P): random operation
// sequences over a grid of (key range, operation count, seed) parameters,
// checking after every batch that
//   * the tree agrees with a std::set oracle on every probe,
//   * the structural invariants hold (BST order, leaf-oriented arithmetic),
//   * for_each enumerates exactly the oracle in order.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

struct SweepParam {
  std::uint64_t key_range;
  int ops;
  std::uint64_t seed;
};

class RandomOpsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomOpsSweep, OracleAndInvariantsHold) {
  const SweepParam p = GetParam();
  EfrbTreeSet<int> tree;
  std::set<int> oracle;
  Xoshiro256 rng(p.seed);

  const int check_every = std::max(p.ops / 8, 1);
  for (int i = 0; i < p.ops; ++i) {
    const int k = static_cast<int>(rng.next_below(p.key_range));
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(tree.insert(k), oracle.insert(k).second)
            << "op " << i << " key " << k;
        break;
      case 1:
        ASSERT_EQ(tree.erase(k), oracle.erase(k) != 0)
            << "op " << i << " key " << k;
        break;
      default:
        ASSERT_EQ(tree.contains(k), oracle.count(k) != 0)
            << "op " << i << " key " << k;
    }
    if (i % check_every == check_every - 1) {
      const auto v = tree.validate();
      ASSERT_TRUE(v.ok) << "after op " << i << ": " << v.error;
      ASSERT_EQ(v.real_leaves, oracle.size());
      ASSERT_EQ(v.internals, v.real_leaves + 1);
    }
  }

  std::vector<int> enumerated;
  tree.for_each([&](const int& k, const auto&) { enumerated.push_back(k); });
  ASSERT_EQ(enumerated.size(), oracle.size());
  EXPECT_TRUE(std::equal(enumerated.begin(), enumerated.end(), oracle.begin()));
  if (!oracle.empty()) {
    EXPECT_EQ(tree.min_key(), std::optional<int>(*oracle.begin()));
    EXPECT_EQ(tree.max_key(), std::optional<int>(*oracle.rbegin()));
  } else {
    EXPECT_EQ(tree.min_key(), std::nullopt);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KeyRangeGrid, RandomOpsSweep,
    ::testing::Values(
        SweepParam{2, 2000, 1},      // pathological: near-constant collisions
        SweepParam{8, 4000, 2},      //
        SweepParam{64, 6000, 3},     //
        SweepParam{64, 6000, 4},     // same range, different seed
        SweepParam{1024, 8000, 5},   //
        SweepParam{1024, 8000, 6},   //
        SweepParam{65536, 8000, 7},  // sparse: mostly misses
        SweepParam{65536, 8000, 8}),
    [](const auto& info) {
      return "range" + std::to_string(info.param.key_range) + "_ops" +
             std::to_string(info.param.ops) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Concurrent parameter sweep: thread count x key range, parity oracle.
// ---------------------------------------------------------------------------

struct ConcParam {
  unsigned threads;
  std::uint64_t key_range;
};

class ConcurrentSweep : public ::testing::TestWithParam<ConcParam> {};

TEST_P(ConcurrentSweep, ParityOracleAcrossGrid) {
  const ConcParam p = GetParam();
  EfrbTreeSet<int> tree;
  std::vector<std::atomic<std::uint64_t>> flips(p.key_range);

  run_threads(p.threads, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 1000003 + p.key_range);
    const int ops = 24000 / static_cast<int>(p.threads);
    for (int i = 0; i < ops; ++i) {
      const auto k = rng.next_below(p.key_range);
      if (rng.next_below(2) == 0) {
        if (tree.insert(static_cast<int>(k))) flips[k].fetch_add(1);
      } else {
        if (tree.erase(static_cast<int>(k))) flips[k].fetch_add(1);
      }
    }
  });

  for (std::uint64_t k = 0; k < p.key_range; ++k) {
    ASSERT_EQ(tree.contains(static_cast<int>(k)), (flips[k].load() % 2) == 1)
        << "key " << k;
  }
  const auto v = tree.validate();
  ASSERT_TRUE(v.ok) << v.error;
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByRange, ConcurrentSweep,
    ::testing::Values(ConcParam{2, 4}, ConcParam{2, 256}, ConcParam{4, 4},
                      ConcParam{4, 64}, ConcParam{4, 1024}, ConcParam{8, 16},
                      ConcParam{8, 512}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.threads) + "_range" +
             std::to_string(info.param.key_range);
    });

// ---------------------------------------------------------------------------
// Idempotence / inverse properties.
// ---------------------------------------------------------------------------

class KeyRangeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyRangeProperty, InsertEraseIsIdentity) {
  const std::uint64_t range = GetParam();
  EfrbTreeSet<int> tree;
  Xoshiro256 rng(range);
  // Start from a random base population.
  std::set<int> base;
  for (int i = 0; i < 200; ++i) {
    const int k = static_cast<int>(rng.next_below(range));
    if (tree.insert(k)) base.insert(k);
  }
  const auto v_before = tree.validate();
  // Do-and-undo 500 random fresh keys: final membership must equal the base.
  for (int i = 0; i < 500; ++i) {
    const int k = static_cast<int>(rng.next_below(range));
    const bool was_new = tree.insert(k);
    if (was_new) { ASSERT_TRUE(tree.erase(k)); }
  }
  const auto v_after = tree.validate();
  ASSERT_TRUE(v_after.ok) << v_after.error;
  EXPECT_EQ(v_after.real_leaves, v_before.real_leaves);
  for (int k : base) EXPECT_TRUE(tree.contains(k)) << k;
}

INSTANTIATE_TEST_SUITE_P(Ranges, KeyRangeProperty,
                         ::testing::Values(4, 16, 256, 4096, 1 << 20));

}  // namespace
}  // namespace efrb
