// Tests for the epoch-based reclaimer: the guarantee the tree depends on is
// that an object handed to retire() is never freed while a thread that could
// have seen it remains pinned, and IS eventually freed once all such pins end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/barrier.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

/// Object whose destructor flips a flag, to observe exactly when frees happen.
struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : counter_(counter) {}
  ~Tracked() { counter_->fetch_add(1); }
  std::atomic<int>* counter_;
};

TEST(LeakyReclaimerTest, SatisfiesPolicyAndNeverFrees) {
  static_assert(ReclaimerPolicy<LeakyReclaimer>);
  LeakyReclaimer r;
  [[maybe_unused]] auto g = r.pin();
  // Retire must not free: give it a static so the "leak" is not a real leak
  // under ASan.
  static int dummy = 0;
  r.retire(&dummy);
  EXPECT_EQ(r.retired_count(), 0u);
}

TEST(EpochReclaimerTest, SatisfiesPolicy) {
  static_assert(ReclaimerPolicy<EpochReclaimer>);
  SUCCEED();
}

TEST(EpochReclaimerTest, RetiredObjectsEventuallyFreed) {
  std::atomic<int> freed{0};
  {
    EpochReclaimer r(8, /*retire_batch=*/4);
    for (int i = 0; i < 100; ++i) {
      auto g = r.pin();
      r.retire(new Tracked(&freed));
    }
    r.flush();
    EXPECT_GT(freed.load(), 0) << "nothing was freed despite quiescence";
  }
  // Reclaimer destruction frees the stragglers.
  EXPECT_EQ(freed.load(), 100);
}

TEST(EpochReclaimerTest, PinnedThreadBlocksReclamation) {
  std::atomic<int> freed{0};
  EpochReclaimer r(8, /*retire_batch=*/1);
  YieldingBarrier ready(2), release(2);

  std::thread pinner([&] {
    auto g = r.pin();  // hold a pin across the other thread's retire storm
    ready.arrive_and_wait();
    release.arrive_and_wait();
  });

  ready.arrive_and_wait();
  // This thread retires many objects; none retired *after* the pin began may
  // be freed while the pin is held. (Due to epoch granularity a bounded
  // prefix could be freed if retired with an older stamp; here the pinner
  // pinned first, so every retire has stamp >= pin epoch and must survive.)
  for (int i = 0; i < 50; ++i) {
    auto g = r.pin();
    r.retire(new Tracked(&freed));
  }
  r.flush();
  EXPECT_EQ(freed.load(), 0) << "freed an object while a pin from before its "
                                "retirement was still held";
  release.arrive_and_wait();
  pinner.join();

  for (int i = 0; i < 10; ++i) {
    auto g = r.pin();
    r.retire(new Tracked(&freed));
    r.flush();
  }
  EXPECT_GT(freed.load(), 0) << "unpinning did not enable reclamation";
  // Drain completely: entries retired under the momentary pins above need a
  // couple more epoch advances. Every Tracked references this frame's
  // counter, so none may outlive the test (the thread-local slot lease keeps
  // the registry — and any stranded retirees — alive until thread exit).
  for (int i = 0; i < 64 && freed.load() < 60; ++i) r.flush();
  ASSERT_EQ(freed.load(), 60);
}

TEST(EpochReclaimerTest, EpochAdvancesWhenAllQuiescent) {
  EpochReclaimer r(8, 1);
  const std::uint64_t e0 = r.current_epoch();
  for (int i = 0; i < 10; ++i) {
    auto g = r.pin();
    r.retire(new int(i));
  }
  r.flush();
  EXPECT_GT(r.current_epoch(), e0);
}

TEST(EpochReclaimerTest, NestedPinsKeepOuterAnnouncement) {
  std::atomic<int> freed{0};
  EpochReclaimer r(8, 1);
  {
    auto outer = r.pin();
    {
      auto inner = r.pin();  // must not overwrite the outer announcement
    }
    // Outer still pinned: nothing this thread retires now may be freed by
    // other threads... exercise by retiring from a second thread.
    std::thread t([&] {
      for (int i = 0; i < 20; ++i) {
        auto g = r.pin();
        r.retire(new Tracked(&freed));
      }
      r.flush();
    });
    t.join();
    EXPECT_EQ(freed.load(), 0);
  }
  // Outer pin released: drain the orphaned retirees (handed off when thread t
  // exited) so no deleter referencing this frame's counter survives the test.
  for (int i = 0; i < 64 && freed.load() < 20; ++i) r.flush();
  ASSERT_EQ(freed.load(), 20);
}

TEST(EpochReclaimerTest, GuardIsMovable) {
  EpochReclaimer r(8, 4);
  std::optional<EpochReclaimer::Guard> slot;
  {
    auto g = r.pin();
    slot = std::move(g);  // pin ownership transfers
  }
  // Pin still held via `slot`; a second pin on the same thread nests fine.
  auto g2 = r.pin();
  slot.reset();
  SUCCEED();
}

TEST(EpochReclaimerTest, FreedCountMatchesUnderChurn) {
  std::atomic<int> freed{0};
  constexpr int kPerThread = 2000;
  constexpr int kThreads = 4;
  {
    EpochReclaimer r(16, 16);
    run_threads(kThreads, [&](std::size_t) {
      for (int i = 0; i < kPerThread; ++i) {
        auto g = r.pin();
        r.retire(new Tracked(&freed));
      }
    });
    EXPECT_EQ(freed.load() + 0, freed.load());  // no torn counter
  }
  EXPECT_EQ(freed.load(), kPerThread * kThreads);
}

TEST(EpochReclaimerTest, ManyThreadsPinUnpinConcurrently) {
  EpochReclaimer r(32, 8);
  std::atomic<int> freed{0};
  run_threads(8, [&](std::size_t tid) {
    for (int i = 0; i < 500; ++i) {
      auto g = r.pin();
      if (i % 2 == static_cast<int>(tid % 2)) r.retire(new Tracked(&freed));
    }
  });
  // All pins released; a few flush rounds must free everything retired.
  for (int i = 0; i < 5; ++i) {
    auto g = r.pin();
    r.retire(new Tracked(&freed));
    r.flush();
  }
  EXPECT_GT(freed.load(), 0);
  // 8 threads x 250 retires each, plus the 5 above. Drain to the exact total:
  // stragglers would run their deleters against this dead frame at thread
  // exit (the TLS lease keeps the registry alive past the reclaimer).
  constexpr int kTotal = 8 * 250 + 5;
  for (int i = 0; i < 64 && freed.load() < kTotal; ++i) r.flush();
  ASSERT_EQ(freed.load(), kTotal);
}

TEST(EpochReclaimerTest, SlotReleasedAtThreadExitIsReusable) {
  EpochReclaimer r(/*max_threads=*/2, 4);  // deliberately tiny slot table
  for (int round = 0; round < 8; ++round) {
    std::thread t([&] {
      auto g = r.pin();
      r.retire(new int(round));
    });
    t.join();  // slot must be released, or round 3+ would abort on capacity
  }
  SUCCEED();
}

TEST(EpochReclaimerTest, DistinctInstancesAreIndependent) {
  std::atomic<int> freed_a{0}, freed_b{0};
  EpochReclaimer a(8, 2), b(8, 2);
  auto ga = a.pin();  // a is pinned; b is not
  for (int i = 0; i < 20; ++i) {
    auto gb = b.pin();
    b.retire(new Tracked(&freed_b));
  }
  b.flush();
  EXPECT_GT(freed_b.load(), 0) << "pin on instance A must not stall B";
  EXPECT_EQ(freed_a.load(), 0);
  // Drain B fully (A's pin must not matter): leftover retirees would hold
  // dangling pointers to this frame's counter until thread exit.
  for (int i = 0; i < 64 && freed_b.load() < 20; ++i) b.flush();
  ASSERT_EQ(freed_b.load(), 20);
}

TEST(EpochReclaimerTest, DetachedThreadsRetireesAreOrphanedAndFreed) {
  std::atomic<int> freed{0};
  EpochReclaimer r(/*max_threads=*/4, /*retire_batch=*/64);
  {
    // Batch of 64 never reached: nothing is swept while attached, so the
    // whole list is still held when the attachment dies.
    auto att = r.attach();
    for (int i = 0; i < 10; ++i) att.retire(new Tracked(&freed));
    att.detach();
  }
  // The structure (and its registry) are still live; the detached thread's
  // retirees were handed to the orphan list, and any later flush — from a
  // thread that never owned them — must free them.
  EXPECT_EQ(freed.load(), 0);
  r.flush();
  EXPECT_EQ(freed.load(), 10);
}

TEST(EpochReclaimerTest, OrphanGaugeMirrorsDrainedTotalsUnderChurn) {
  std::atomic<int> freed{0};
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  constexpr int kPerRound = 8;
  constexpr int kTotal = kThreads * kRounds * kPerRound;
  EpochReclaimer r(/*max_threads=*/16, /*retire_batch=*/64);

  // Churners repeatedly attach, retire a short list (batch never reached, so
  // the whole list is alive at detach), and detach — every round hands its
  // retirees to the orphan store while a concurrent sweeper races drains
  // against the hand-offs.
  std::atomic<bool> stop{false};
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      r.flush();
      // The snapshot races the churn (fields are read one by one), so only
      // the absolute bound is safe mid-run; the exact books are checked at
      // quiescence below.
      const ReclaimGauges g = r.gauges();
      EXPECT_LE(g.orphan_depth, static_cast<std::uint64_t>(kTotal));
    }
  });
  run_threads(kThreads, [&](std::size_t) {
    for (int round = 0; round < kRounds; ++round) {
      auto att = r.attach();
      for (int i = 0; i < kPerRound; ++i) att.retire(new Tracked(&freed));
      att.detach();
    }
  });
  stop.store(true, std::memory_order_release);
  sweeper.join();

  // Quiescent with no attachments: everything retired-but-not-freed sits in
  // the orphan store, so the lock-free mirror must equal the backlog exactly.
  ReclaimGauges g = r.gauges();
  EXPECT_EQ(g.retired_total, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(g.orphan_depth, g.backlog());
  EXPECT_EQ(static_cast<std::uint64_t>(freed.load()), g.freed_total);

  // Drain to empty: the mirror must reach zero with the books balanced.
  for (int i = 0; i < 64 && freed.load() < kTotal; ++i) r.flush();
  g = r.gauges();
  EXPECT_EQ(g.orphan_depth, 0u);
  EXPECT_EQ(g.freed_total, g.retired_total);
  ASSERT_EQ(freed.load(), kTotal);
}

TEST(EpochReclaimerTest, AttachThrowsCapacityExhaustedAndRecovers) {
  EpochReclaimer r(/*max_threads=*/2);
  auto a = r.attach();
  auto b = r.attach();
  EXPECT_THROW(r.attach(), CapacityExhausted);
  // No side effects on failure: releasing one slot makes attach succeed.
  b.detach();
  EXPECT_NO_THROW({
    auto c = r.attach();
    c.retire(new int(1));
  });
  r.flush();
}

}  // namespace
}  // namespace efrb
