// Integration of the tree with its reclamation policy: object-lifecycle
// accounting across the retirement protocol (nodes at unflag, Info records at
// the next overwriting CAS), destructor behaviour with un-overwritten Clean
// words, and reclaimer sharing across many trees and thread generations.
// ASan runs of this binary are the authoritative double-free/leak check.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

TEST(ReclaimIntegrationTest, SequentialChurnFreesNodesAndRecords) {
  EfrbTreeSet<int> t;
  // Alternate insert/erase on one key: each round retires 1 leaf + 1 internal
  // + 1 leaf (insert replaces ∞-leaf sibling copies around) + info records.
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(t.insert(7));
    ASSERT_TRUE(t.erase(7));
  }
  t.reclaimer().flush();
  // 20k insert+delete rounds generate ~5 retired objects each; the precise
  // number depends on the retirement protocol, but the order of magnitude
  // must be there (i.e. the tree is not leaking its history).
  EXPECT_GT(t.reclaimer().freed_count(), 50000u);
}

TEST(ReclaimIntegrationTest, InfoRecordsAreRetiredByOverwritingCas) {
  // A single insert leaves its IInfo referenced by the parent's Clean word —
  // not yet retired. A subsequent delete flags/marks through that word and
  // must retire the record. We can't observe individual records, but we can
  // observe the count delta with a tiny retire batch.
  EfrbTreeSet<int> t(std::less<int>{}, EpochReclaimer(8, /*retire_batch=*/1));
  t.insert(1);              // IInfo_1 parked in a Clean word
  t.insert(2);              // IInfo_2 parked (different parent word)
  t.reclaimer().flush();
  const auto before = t.reclaimer().freed_count();
  // Deleting 2 dflags the grandparent and marks the parent: both CASes
  // overwrite Clean words holding the parked IInfos, retiring them, and the
  // dunflag retires the spliced parent + deleted leaf.
  ASSERT_TRUE(t.erase(2));
  for (int i = 0; i < 4; ++i) {
    [[maybe_unused]] auto g = t.reclaimer().pin();
    t.reclaimer().flush();
  }
  EXPECT_GE(t.reclaimer().freed_count(), before + 3)
      << "parked Info records / spliced nodes were not reclaimed";
}

TEST(ReclaimIntegrationTest, DestructorFreesParkedInfoRecords) {
  // Insert-only workload: every parent's Clean word holds a parked IInfo at
  // destruction (never overwritten). The destructor must free them — under
  // ASan this test fails with a leak report if it does not.
  auto* t = new EfrbTreeSet<int>();
  for (int k = 0; k < 2000; ++k) ASSERT_TRUE(t->insert(k));
  delete t;
  SUCCEED();
}

TEST(ReclaimIntegrationTest, DestructorAfterMixedWorkload) {
  auto* t = new EfrbTreeSet<int>();
  Xoshiro256 rng(3);
  for (int i = 0; i < 30000; ++i) {
    const int k = static_cast<int>(rng.next_below(128));
    if (rng.next_below(2) == 0) t->insert(k);
    else t->erase(k);
  }
  delete t;  // ASan: no leaks, no double frees of records shared by words
  SUCCEED();
}

TEST(ReclaimIntegrationTest, ConcurrentChurnThenDestruction) {
  for (int round = 0; round < 5; ++round) {
    auto* t = new EfrbTreeSet<int>();
    run_threads(4, [&](std::size_t tid) {
      Xoshiro256 rng(tid * 11 + static_cast<std::uint64_t>(round));
      for (int i = 0; i < 4000; ++i) {
        const int k = static_cast<int>(rng.next_below(64));
        if (rng.next_below(2) == 0) t->insert(k);
        else t->erase(k);
      }
    });
    delete t;
  }
  SUCCEED();
}

TEST(ReclaimIntegrationTest, SmallRetireBatchUnderConcurrency) {
  // retire_batch=1 maximizes epoch-advance and sweep frequency — the most
  // aggressive reclamation schedule must still never free a reachable node.
  EfrbTreeSet<int> t(std::less<int>{}, EpochReclaimer(16, 1));
  std::vector<std::atomic<std::uint64_t>> flips(32);
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid);
    for (int i = 0; i < 6000; ++i) {
      const int k = static_cast<int>(rng.next_below(32));
      if (rng.next_below(2) == 0) {
        if (t.insert(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
      } else {
        if (t.erase(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
      }
    }
  });
  for (int k = 0; k < 32; ++k) {
    EXPECT_EQ(t.contains(k),
              (flips[static_cast<std::size_t>(k)].load() % 2) == 1);
  }
  EXPECT_TRUE(t.validate().ok);
  EXPECT_GT(t.reclaimer().freed_count(), 0u);
}

TEST(ReclaimIntegrationTest, ManyTreesShareThreadSlots) {
  // Sequentially created trees on the same thread exercise the thread-local
  // lease cache (instance -> slot) and slot recycling.
  for (int i = 0; i < 50; ++i) {
    EfrbTreeSet<int> t;
    for (int k = 0; k < 100; ++k) t.insert(k);
    for (int k = 0; k < 100; ++k) t.erase(k);
    EXPECT_TRUE(t.empty());
  }
  SUCCEED();
}

TEST(ReclaimIntegrationTest, TreesOutliveWorkerThreads) {
  // Worker threads die between operation bursts; their epoch slots must be
  // recycled and their unfreed retire lists inherited safely.
  EfrbTreeSet<int> t(std::less<int>{}, EpochReclaimer(/*max_threads=*/4, 8));
  for (int gen = 0; gen < 12; ++gen) {
    std::thread w([&, gen] {
      for (int i = 0; i < 300; ++i) {
        const int k = gen * 1000 + i;
        t.insert(k);
        t.erase(k);
      }
    });
    w.join();
  }
  EXPECT_TRUE(t.validate().ok);
  EXPECT_TRUE(t.empty());
}

TEST(ReclaimIntegrationTest, HelpingDoesNotDoubleRetire) {
  // High-contention single-key fight: many helpers race to complete the same
  // operations. Every retirement site is guarded by a unique CAS winner; a
  // double retire becomes a double free that ASan catches here.
  EfrbTreeSet<int> t(std::less<int>{}, EpochReclaimer(16, 4));
  run_threads(8, [&](std::size_t tid) {
    for (int i = 0; i < 4000; ++i) {
      if ((i + static_cast<int>(tid)) % 2 == 0) t.insert(1);
      else t.erase(1);
    }
  });
  EXPECT_TRUE(t.validate().ok);
}

}  // namespace
}  // namespace efrb
