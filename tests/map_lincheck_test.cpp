// Linearizability checking of the MAP interface — including the
// insert_or_assign extension, whose correctness argument (it reuses the
// iflag/ichild/iunflag machinery with a replacement leaf) is validated here
// empirically: recorded concurrent histories of get/insert/assign/erase with
// values must admit a linearization under the sequential map spec.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/chromatic.hpp"
#include "core/efrb_tree.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/map_spec.hpp"
#include "reclaim/hazard.hpp"
#include "shard/sharded_map.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

using lincheck::MapHistory;
using lincheck::MapOperation;
using lincheck::MapOpType;
using lincheck::NibbleMapSpec;
using MapChecker = lincheck::BasicChecker<NibbleMapSpec>;

MapOperation get_op(std::uint64_t k, bool ok, std::uint64_t v,
                    std::uint64_t inv, std::uint64_t res) {
  return MapOperation{MapOpType::kGet, k, 0, ok, v, inv, res, 0};
}
MapOperation put_op(std::uint64_t k, std::uint64_t v, bool ok,
                    std::uint64_t inv, std::uint64_t res) {
  return MapOperation{MapOpType::kPut, k, v, ok, 0, inv, res, 0};
}
MapOperation assign_op(std::uint64_t k, std::uint64_t v, bool inserted,
                       std::uint64_t inv, std::uint64_t res) {
  return MapOperation{MapOpType::kAssign, k, v, inserted, 0, inv, res, 0};
}
MapOperation erase_op(std::uint64_t k, bool ok, std::uint64_t inv,
                      std::uint64_t res) {
  return MapOperation{MapOpType::kErase, k, 0, ok, 0, inv, res, 0};
}

TEST(MapSpecTest, NibblePacking) {
  auto s = NibbleMapSpec::empty_state();
  EXPECT_EQ(NibbleMapSpec::nibble(s, 3), NibbleMapSpec::kAbsent);
  s = NibbleMapSpec::with_nibble(s, 3, 9);
  EXPECT_EQ(NibbleMapSpec::nibble(s, 3), 9u);
  EXPECT_EQ(NibbleMapSpec::nibble(s, 2), NibbleMapSpec::kAbsent);
  EXPECT_EQ(NibbleMapSpec::nibble(s, 4), NibbleMapSpec::kAbsent);
}

TEST(MapCheckerTest, SequentialLegalHistory) {
  MapHistory h = {
      put_op(1, 5, true, 0, 1),
      get_op(1, true, 5, 2, 3),
      assign_op(1, 7, false, 4, 5),  // replaced existing -> "not inserted"
      get_op(1, true, 7, 6, 7),
      erase_op(1, true, 8, 9),
      get_op(1, false, 0, 10, 11),
  };
  EXPECT_TRUE(MapChecker::check(h));
}

TEST(MapCheckerTest, GetOfStaleValueIsRejected) {
  MapHistory h = {
      put_op(1, 5, true, 0, 1),
      assign_op(1, 7, false, 2, 3),
      get_op(1, true, 5, 4, 5),  // must see 7, not the overwritten 5
  };
  EXPECT_FALSE(MapChecker::check(h));
}

TEST(MapCheckerTest, PutOverExistingMustFail) {
  MapHistory h = {
      put_op(1, 5, true, 0, 1),
      put_op(1, 6, true, 2, 3),  // illegal: no-overwrite insert succeeded twice
  };
  EXPECT_FALSE(MapChecker::check(h));
}

TEST(MapCheckerTest, OverlappingAssignsAllowEitherFinalValue) {
  MapHistory sees_2 = {
      put_op(1, 9, true, 0, 1),
      assign_op(1, 2, false, 2, 10),
      assign_op(1, 3, false, 3, 9),
      get_op(1, true, 2, 11, 12),
  };
  MapHistory sees_3 = {
      put_op(1, 9, true, 0, 1),
      assign_op(1, 2, false, 2, 10),
      assign_op(1, 3, false, 3, 9),
      get_op(1, true, 3, 11, 12),
  };
  MapHistory sees_9 = {
      put_op(1, 9, true, 0, 1),
      assign_op(1, 2, false, 2, 10),
      assign_op(1, 3, false, 3, 9),
      get_op(1, true, 9, 11, 12),  // both assigns completed before the get
  };
  EXPECT_TRUE(MapChecker::check(sees_2));
  EXPECT_TRUE(MapChecker::check(sees_3));
  EXPECT_FALSE(MapChecker::check(sees_9));
}

TEST(MapCheckerTest, ConcurrentPutAndAssignOnEmptyKey) {
  // Both claim "inserted": only linearizable if... put first then assign
  // would report inserted=false for assign; assign first makes put fail.
  // So ok=true for both is NOT linearizable.
  MapHistory bad = {
      put_op(1, 2, true, 0, 5),
      assign_op(1, 3, true, 1, 4),
  };
  EXPECT_FALSE(MapChecker::check(bad));
  MapHistory good = {
      put_op(1, 2, false, 0, 5),
      assign_op(1, 3, true, 1, 4),
  };
  EXPECT_TRUE(MapChecker::check(good));
}

// ---------------------------------------------------------------------------
// Recorded histories from the real map.
// ---------------------------------------------------------------------------

template <typename MapT>
void run_recorded_bursts() {
  // Each burst runs on a fresh map (no windowed checking for maps — see
  // map_spec.hpp) with 3 threads x 5 ops = 15 ops <= kMaxWindow.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    MapT map;
    std::atomic<std::uint64_t> clock{0};
    std::vector<MapHistory> logs(3);
    run_threads(3, [&](std::size_t tid) {
      Xoshiro256 rng(seed * 131 + tid);
      for (int i = 0; i < 5; ++i) {
        MapOperation op;
        op.thread = static_cast<unsigned>(tid);
        op.key = rng.next_below(4);
        op.invoke = clock.fetch_add(1);
        const int k = static_cast<int>(op.key);
        switch (rng.next_below(4)) {
          case 0: {
            op.type = MapOpType::kGet;
            const auto v = map.get(k);
            op.ok = v.has_value();
            op.value_out = v.has_value() ? static_cast<std::uint64_t>(*v) : 0;
            break;
          }
          case 1:
            op.type = MapOpType::kPut;
            op.value_arg = rng.next_below(14);
            op.ok = map.insert(k, static_cast<int>(op.value_arg));
            break;
          case 2:
            op.type = MapOpType::kAssign;
            op.value_arg = rng.next_below(14);
            op.ok = map.insert_or_assign(k, static_cast<int>(op.value_arg));
            break;
          default:
            op.type = MapOpType::kErase;
            op.ok = map.erase(k);
        }
        op.response = clock.fetch_add(1);
        logs[tid].push_back(op);
      }
    });
    MapHistory all;
    for (const auto& log : logs) all.insert(all.end(), log.begin(), log.end());
    EXPECT_TRUE(MapChecker::check(all)) << "seed " << seed;
  }
}

template <typename MapT>
void run_single_key_assign_fight() {
  // All threads assign distinct values to one key plus interleaved gets: the
  // strictest test of the insert_or_assign linearization argument.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    MapT map;
    std::atomic<std::uint64_t> clock{0};
    std::vector<MapHistory> logs(4);
    run_threads(4, [&](std::size_t tid) {
      Xoshiro256 rng(seed * 31 + tid);
      for (int i = 0; i < 5; ++i) {
        MapOperation op;
        op.thread = static_cast<unsigned>(tid);
        op.key = 0;
        op.invoke = clock.fetch_add(1);
        if (rng.next_below(2) == 0) {
          op.type = MapOpType::kAssign;
          op.value_arg = 1 + tid * 3 + static_cast<std::uint64_t>(i) % 3;
          op.ok = map.insert_or_assign(0, static_cast<int>(op.value_arg));
        } else {
          op.type = MapOpType::kGet;
          const auto v = map.get(0);
          op.ok = v.has_value();
          op.value_out = v.has_value() ? static_cast<std::uint64_t>(*v) : 0;
        }
        op.response = clock.fetch_add(1);
        logs[tid].push_back(op);
      }
    });
    MapHistory all;
    for (const auto& log : logs) all.insert(all.end(), log.begin(), log.end());
    EXPECT_TRUE(MapChecker::check(all)) << "seed " << seed;
  }
}

TEST(EfrbMapLinearizabilityTest, RecordedBurstsAreLinearizable) {
  run_recorded_bursts<EfrbTreeMap<int, int>>();
}

TEST(EfrbMapLinearizabilityTest, SingleKeyAssignFight) {
  run_single_key_assign_fight<EfrbTreeMap<int, int>>();
}

// The chromatic tree's value operations ride the same recorded-history
// checker: insert/assign/replace are all single-SCX leaf swaps, and the
// histories must admit linearizations under the identical sequential spec.

TEST(ChromaticMapLinearizabilityTest, RecordedBurstsAreLinearizable) {
  run_recorded_bursts<ChromaticTreeMap<int, int>>();
}

TEST(ChromaticMapLinearizabilityTest, SingleKeyAssignFight) {
  run_single_key_assign_fight<ChromaticTreeMap<int, int>>();
}

// The sharded facade routes each key to one inner tree, so per-key
// linearizability must be inherited verbatim from the inners — these recorded
// histories (keys in [0, 4)) cross shard boundaries on every burst and would
// catch any routing bug that sends the same key to two shards.

/// Routes the checker's tiny key universe across two shards.
struct TwoShardRangeRouter : shard::RangeRouter {
  TwoShardRangeRouter() noexcept : RangeRouter(/*shards=*/2, /*key_range=*/4) {}
};

TEST(ShardedMapLinearizabilityTest, RecordedBurstsHashEfrb) {
  run_recorded_bursts<shard::ShardedMap<EfrbTreeMap<int, int>>>();
}

TEST(ShardedMapLinearizabilityTest, RecordedBurstsHashChromaticHazard) {
  run_recorded_bursts<shard::ShardedMap<
      ChromaticTreeMap<int, int, std::less<int>, HazardReclaimer>>>();
}

TEST(ShardedMapLinearizabilityTest, RecordedBurstsRangeEfrb) {
  run_recorded_bursts<
      shard::ShardedMap<EfrbTreeMap<int, int>, TwoShardRangeRouter>>();
}

TEST(ShardedMapLinearizabilityTest, RecordedBurstsRangeChromatic) {
  run_recorded_bursts<
      shard::ShardedMap<ChromaticTreeMap<int, int>, TwoShardRangeRouter>>();
}

TEST(ShardedMapLinearizabilityTest, SingleKeyAssignFightHashEfrb) {
  run_single_key_assign_fight<shard::ShardedMap<EfrbTreeMap<int, int>>>();
}

TEST(ShardedMapLinearizabilityTest, SingleKeyAssignFightRangeChromatic) {
  run_single_key_assign_fight<
      shard::ShardedMap<ChromaticTreeMap<int, int>, TwoShardRangeRouter>>();
}

}  // namespace
}  // namespace efrb
