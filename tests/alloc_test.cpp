// The allocator layer (core/alloc.hpp) and its integration with the tree,
// the reclaimers, and the fault-injection harness:
//
//   * BlockPool unit behaviour — block recycling through a Cache, cache
//     release flushing to the global free list, constructor-throw rollback,
//     and the double-return stamp (a death test);
//   * retire-to-pool — a pooled tree's erased nodes come back through the
//     reclaimer's PoolHook and are reused instead of hitting the heap;
//   * differential oracles — pooled vs heap trees driven by the same op
//     stream, and the lean find_path descent vs the full Search on random
//     and adversarial key streams;
//   * concurrency witnesses — raw pool alloc/free across threads and a
//     pooled tree under churn (the cells check.sh reruns under TSan/ASan);
//   * fault injection — a deleter stalled mid-protocol while other threads
//     churn pooled allocations (stall between retire and pool-return).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/alloc.hpp"
#include "core/efrb_tree.hpp"
#include "baselines/harris_list.hpp"
#include "inject/fault_plan.hpp"
#include "inject/fault_scheduler.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

using Pool64 = BlockPool<64>;

// ---------------------------------------------------------------------------
// BlockPool unit behaviour
// ---------------------------------------------------------------------------

TEST(BlockPool, DestroyThenCreateReusesTheBlock) {
  Pool64 pool;
  auto cache = pool.make_cache();
  int* a = pool.create<int>(cache, 41);
  EXPECT_EQ(*a, 41);
  pool.destroy(cache, a);
  // The private chain is LIFO: the very next create gets the same block.
  int* b = pool.create<int>(cache, 42);
  EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_EQ(*b, 42);
  pool.destroy(cache, b);
}

TEST(BlockPool, CacheReleaseFlushesToGlobalList) {
  Pool64 pool;
  std::set<void*> freed;
  {
    auto cache = pool.make_cache();
    std::vector<int*> blocks;
    for (int i = 0; i < 8; ++i) blocks.push_back(pool.create<int>(cache, i));
    for (int* p : blocks) {
      freed.insert(p);
      pool.destroy(cache, p);
    }
  }  // ~Cache: private chain pushed onto the global free list
  auto cache2 = pool.make_cache();
  // The fresh cache adopts the flushed chain before carving a new slab.
  int* p = pool.create<int>(cache2, 0);
  EXPECT_TRUE(freed.count(p) == 1);
  pool.destroy(cache2, p);
  EXPECT_GE(pool.stats().cache_refills, 1u);
}

TEST(BlockPool, StatsTrackSlabsAndRecycling) {
  Pool64 pool;
  EXPECT_EQ(pool.stats().slabs, 0u);
  auto cache = pool.make_cache();
  int* p = pool.create<int>(cache, 1);
  const auto s = pool.stats();
  EXPECT_GE(s.slabs, 1u);
  EXPECT_EQ(s.slab_bytes, s.slabs * 256 * 64);
  // PoolHook return path pushes onto the global list and counts as recycled.
  std::destroy_at(p);
  const PoolHook hook = pool.pool_hook();
  hook.fn(hook.pool, p);
  EXPECT_GE(pool.stats().recycled, 1u);
}

TEST(BlockPool, ConstructorThrowReturnsBlockToCache) {
  struct Thrower {
    explicit Thrower(bool fire) {
      if (fire) throw std::runtime_error("ctor");
    }
  };
  Pool64 pool;
  auto cache = pool.make_cache();
  // Prime the chain so the throwing create draws a known block.
  int* probe = pool.create<int>(cache, 0);
  void* expected = probe;
  pool.destroy(cache, probe);
  EXPECT_THROW(pool.create<Thrower>(cache, true), std::runtime_error);
  // The block went back to the cache, not leaked: the next create reuses it.
  Thrower* t = pool.create<Thrower>(cache, false);
  EXPECT_EQ(static_cast<void*>(t), expected);
  pool.destroy(cache, t);
}

TEST(BlockPool, HookKeepsStateAliveAfterPoolDies) {
  // A PoolHook outliving its BlockPool (the reclaimer-registry scenario):
  // returning a block through the hook after ~BlockPool must not crash —
  // the keepalive share owns the state.
  PoolHook hook;
  void* block = nullptr;
  {
    Pool64 pool;
    auto cache = pool.make_cache();
    int* p = pool.create<int>(cache, 7);
    std::destroy_at(p);
    block = p;
    hook = pool.pool_hook();
  }
  ASSERT_TRUE(hook);
  hook.fn(hook.pool, block);
  hook = PoolHook{};  // drop the last keepalive; slabs are freed here
}

using BlockPoolDeathTest = ::testing::Test;

TEST(BlockPoolDeathTest, DoubleReturnIsCaught) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Pool64 pool;
  auto cache = pool.make_cache();
  int* p = pool.create<int>(cache, 0);
  std::destroy_at(p);
  const PoolHook hook = pool.pool_hook();
  hook.fn(hook.pool, p);
  EXPECT_DEATH(hook.fn(hook.pool, p), "returned twice");
}

// ---------------------------------------------------------------------------
// Retire-to-pool through the reclaimers
// ---------------------------------------------------------------------------

template <typename Reclaimer>
using PooledTree =
    EfrbTreeMap<int, int, std::less<int>, Reclaimer, PooledTraits>;

template <typename Reclaimer>
class PooledTreeTest : public ::testing::Test {};

using PooledReclaimers = ::testing::Types<EpochReclaimer, HazardReclaimer>;
TYPED_TEST_SUITE(PooledTreeTest, PooledReclaimers);

TYPED_TEST(PooledTreeTest, ErasedNodesRecycleIntoThePool) {
  PooledTree<TypeParam> t;
  {
    auto h = t.handle();
    for (int i = 0; i < 512; ++i) h.insert(i, i);
    for (int i = 0; i < 512; ++i) h.erase(i);
  }
  t.reclaimer().flush();
  // Every erase retired an internal + a leaf + Info records; after the flush
  // they went back through the PoolHook onto the global free list.
  EXPECT_GT(t.allocator().stats().recycled, 0u);
  EXPECT_GT(t.allocator().stats().slabs, 0u);
}

TYPED_TEST(PooledTreeTest, ChurnReusesBlocksInsteadOfGrowing) {
  PooledTree<TypeParam> t;
  auto h = t.handle();
  // Steady-state churn over a small key set: after warmup the pool should
  // stop carving slabs — blocks cycle retire -> hook -> cache -> node.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) h.insert(i, i);
    for (int i = 0; i < 64; ++i) h.erase(i);
    t.reclaimer().flush();
  }
  const auto warm = t.allocator().stats().slabs;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) h.insert(i, i);
    for (int i = 0; i < 64; ++i) h.erase(i);
    t.reclaimer().flush();
  }
  EXPECT_LE(t.allocator().stats().slabs, warm + 1);
}

TEST(PooledHandle, DetachFlushesThePrivateCache) {
  PooledTree<EpochReclaimer> t;
  auto h = t.handle();
  for (int i = 0; i < 100; ++i) h.insert(i, i);
  for (int i = 0; i < 100; ++i) h.erase(i);
  // Moving a handle hands the cache off intact; the moved-to handle keeps
  // operating on the same private chain.
  auto h2 = std::move(h);
  h2.insert(1, 1);
  EXPECT_TRUE(h2.contains(1));
  h2.detach();
  EXPECT_FALSE(h2.valid());
}

TEST(PooledHarrisListTest, RecyclesThroughTheDomain) {
  PooledHarrisList<int> l;
  {
    auto h = l.handle();
    for (int i = 0; i < 256; ++i) h.insert(i);
    for (int i = 0; i < 256; ++i) h.erase(i);
    h.flush();
  }
  for (int i = 0; i < 256; ++i) EXPECT_FALSE(l.contains(i));
}

// ---------------------------------------------------------------------------
// Differential oracles
// ---------------------------------------------------------------------------

TEST(AllocDifferential, PooledMatchesHeapOnTheSameOpStream) {
  EfrbTreeMap<int, int> heap_tree;
  PooledTree<EpochReclaimer> pooled_tree;
  std::map<int, int> oracle;
  Xoshiro256 rng(0xa110cu);
  auto hh = heap_tree.handle();
  auto ph = pooled_tree.handle();
  for (int op = 0; op < 20000; ++op) {
    const int k = static_cast<int>(rng.next() % 512);
    switch (rng.next() % 4) {
      case 0: {
        const int v = static_cast<int>(rng.next() % 100);
        const bool inserted = oracle.emplace(k, v).second;
        EXPECT_EQ(hh.insert(k, v), inserted);
        EXPECT_EQ(ph.insert(k, v), inserted);
        break;
      }
      case 1: {
        const bool erased = oracle.erase(k) != 0;
        EXPECT_EQ(hh.erase(k), erased);
        EXPECT_EQ(ph.erase(k), erased);
        break;
      }
      default: {
        const auto it = oracle.find(k);
        const std::optional<int> want =
            it == oracle.end() ? std::nullopt : std::optional<int>(it->second);
        EXPECT_EQ(hh.get(k), want);
        EXPECT_EQ(ph.get(k), want);
        break;
      }
    }
  }
  EXPECT_TRUE(heap_tree.validate().ok) << heap_tree.validate().error;
  EXPECT_TRUE(pooled_tree.validate().ok) << pooled_tree.validate().error;
}

/// Drives the lean find_path (default) and the full-Search read path
/// (FullSearchFindTraits) with identical operations and demands identical
/// answers, against a std::map oracle.
void lean_vs_full(const std::vector<int>& keys) {
  EfrbTreeMap<int, int> lean;  // kLeanFind defaults to true
  EfrbTreeMap<int, int, std::less<int>, EpochReclaimer, FullSearchFindTraits>
      full;
  std::map<int, int> oracle;
  Xoshiro256 rng(0x1ea2f1adu);
  auto lh = lean.handle();
  auto fh = full.handle();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const int k = keys[i];
    switch (rng.next() % 5) {
      case 0: {
        const bool erased = oracle.erase(k) != 0;
        EXPECT_EQ(lh.erase(k), erased);
        EXPECT_EQ(fh.erase(k), erased);
        break;
      }
      case 1:
      case 2: {
        const int v = static_cast<int>(i);
        const bool inserted = oracle.emplace(k, v).second;
        EXPECT_EQ(lh.insert(k, v), inserted);
        EXPECT_EQ(fh.insert(k, v), inserted);
        break;
      }
      default: {
        const auto it = oracle.find(k);
        const std::optional<int> want =
            it == oracle.end() ? std::nullopt : std::optional<int>(it->second);
        EXPECT_EQ(lh.get(k), want) << "lean get(" << k << ")";
        EXPECT_EQ(fh.get(k), want) << "full get(" << k << ")";
        EXPECT_EQ(lh.contains(k), want.has_value());
        EXPECT_EQ(fh.contains(k), want.has_value());
        break;
      }
    }
  }
}

TEST(LeanFindDifferential, RandomKeyStream) {
  std::vector<int> keys;
  Xoshiro256 rng(0xbeefu);
  keys.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    keys.push_back(static_cast<int>(rng.next() % 1024));
  }
  lean_vs_full(keys);
}

TEST(LeanFindDifferential, AdversarialKeyStreams) {
  // Ascending then descending runs (degenerate linear tree shapes), repeated
  // boundary keys, and the extremes next to the sentinel ordering.
  std::vector<int> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(i);
  for (int i = 999; i >= 0; --i) keys.push_back(i);
  for (int i = 0; i < 500; ++i) keys.push_back(0);
  for (int i = 0; i < 500; ++i) keys.push_back(999);
  for (int i = 0; i < 200; ++i) {
    keys.push_back(std::numeric_limits<int>::max());
    keys.push_back(std::numeric_limits<int>::min());
  }
  lean_vs_full(keys);
}

TEST(LeanFindDifferential, LeanReadsUnderConcurrentChurn) {
  // The lean descent never writes; run it against live updaters and check it
  // only ever reports keys from the permanently-present set or the churn set.
  EfrbTreeMap<int, int> t;
  constexpr int kStable = 128;   // keys 0..127 always present
  constexpr int kChurnLo = 256;  // keys 256..383 flicker
  for (int i = 0; i < kStable; ++i) t.insert(i, i);
  std::atomic<bool> stop{false};
  run_threads(4, [&](std::size_t tid) {
    auto h = t.handle();
    if (tid == 0) {
      for (int round = 0; round < 200; ++round) {
        for (int i = kChurnLo; i < kChurnLo + 128; ++i) h.insert(i, i);
        for (int i = kChurnLo; i < kChurnLo + 128; ++i) h.erase(i);
      }
      stop.store(true);
    } else {
      Xoshiro256 rng(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(rng.next() % 512);
        const bool hit = h.contains(k);
        if (k < kStable) {
          EXPECT_TRUE(hit) << "stable key " << k << " vanished";
        } else if (k < kChurnLo || k >= kChurnLo + 128) {
          EXPECT_FALSE(hit) << "phantom key " << k;
        }
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);
}

// ---------------------------------------------------------------------------
// Concurrency witnesses (rerun under TSan and ASan by scripts/check.sh)
// ---------------------------------------------------------------------------

TEST(PoolConcurrency, RawAllocFreeAcrossThreads) {
  Pool64 pool;
  const PoolHook hook = pool.pool_hook();
  run_threads(6, [&](std::size_t tid) {
    auto cache = pool.make_cache();
    Xoshiro256 rng(tid + 1);
    std::vector<std::uint64_t*> live;
    for (int i = 0; i < 20000; ++i) {
      if (live.empty() || rng.next() % 2 == 0) {
        live.push_back(pool.create<std::uint64_t>(cache, tid));
      } else {
        std::uint64_t* p = live.back();
        live.pop_back();
        EXPECT_EQ(*p, tid);
        if (rng.next() % 4 == 0) {
          // Type-erased hook return (the reclaimer sweep path): destroy,
          // then push onto the global list — racing other threads' take_all.
          p->~uint64_t();
          hook.fn(hook.pool, p);
        } else {
          pool.destroy(cache, p);
        }
      }
    }
    for (std::uint64_t* p : live) pool.destroy(cache, p);
  });
}

template <typename Reclaimer>
using PooledSet = EfrbTreeSet<int, std::less<int>, Reclaimer, PooledTraits>;

TYPED_TEST(PooledTreeTest, ParityOracleUnderConcurrentChurn) {
  // The core parity oracle, on the pooled configuration: presence of key k
  // after quiescence == successful flips of k mod 2. Any use-after-recycle
  // or cross-thread block corruption breaks this (and trips TSan/ASan in the
  // sanitizer reruns).
  PooledSet<TypeParam> t;
  constexpr int kKeys = 128;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::atomic<std::uint64_t>> flips(kKeys);
  run_threads(6, [&](std::size_t tid) {
    auto h = t.handle();
    Xoshiro256 rng(tid * 77 + 1);
    for (int i = 0; i < kOpsPerThread; ++i) {
      const int k = static_cast<int>(rng.next() % kKeys);
      if (rng.next() % 2 == 0) {
        if (h.insert(k)) flips[k].fetch_add(1, std::memory_order_relaxed);
      } else {
        if (h.erase(k)) flips[k].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int k = 0; k < kKeys; ++k) {
    const bool present = t.contains(k);
    EXPECT_EQ(present, flips[k].load() % 2 == 1) << "key " << k;
  }
  EXPECT_TRUE(t.validate().ok) << t.validate().error;
  t.reclaimer().flush();
  EXPECT_GT(t.allocator().stats().recycled, 0u);
}

// ---------------------------------------------------------------------------
// Fault injection: recycling with a thread parked mid-protocol
// ---------------------------------------------------------------------------

/// InjectTraits with pooled allocation: the fault harness drives the CAS/stall
/// gates while every node comes from (and returns to) the structure's pool.
struct PooledInjectTraits : inject::InjectTraits {
  static constexpr bool kPooledAlloc = true;
};

template <typename Reclaimer>
using PooledInjectTree =
    EfrbTreeSet<int, std::less<int>, Reclaimer, PooledInjectTraits>;

TYPED_TEST(PooledTreeTest, StalledDeleterDoesNotCorruptRecycling) {
  // Thread 0 deletes key 10 and is parked immediately after its dchild CAS
  // (nodes retired, dunflag not yet done) — the window where its retired
  // blocks sit between retire() and pool-return. Thread 1 churns allocations
  // the whole time; the pool must never hand out a block that is still
  // reachable. Released at the end; the oracle and a structural validation
  // close the case.
  inject::FaultPlan plan;
  inject::FaultAction stall;
  stall.kind = inject::FaultKind::kStall;
  stall.tid = 0;
  stall.point = static_cast<int>(HookPoint::kBeforeDUnflag);
  stall.occurrence = 1;
  plan.actions.push_back(stall);

  PooledInjectTree<TypeParam> t;
  for (int i = 0; i < 64; ++i) t.insert(i);

  inject::FaultScheduler sched(plan);
  std::atomic<bool> deleter_done{false};
  run_threads(2, [&](std::size_t tid) {
    typename inject::FaultScheduler::ThreadScope scope(
        sched, static_cast<unsigned>(tid));
    auto h = t.handle();
    if (tid == 0) {
      EXPECT_TRUE(h.erase(10));  // parks at kBeforeDUnflag
      deleter_done.store(true);
    } else {
      EXPECT_TRUE(sched.wait_until_stalled(0));
      // Churn while the deleter is frozen holding retired-but-unswept nodes.
      for (int round = 0; round < 100; ++round) {
        for (int i = 100; i < 164; ++i) h.insert(i);
        for (int i = 100; i < 164; ++i) h.erase(i);
        t.reclaimer().flush();
      }
      EXPECT_FALSE(deleter_done.load());
      sched.release_all();
    }
  });
  EXPECT_FALSE(t.contains(10));
  for (int i = 0; i < 64; ++i) {
    if (i != 10) {
      EXPECT_TRUE(t.contains(i)) << "key " << i;
    }
  }
  EXPECT_TRUE(t.validate().ok) << t.validate().error;
}

}  // namespace
}  // namespace efrb
