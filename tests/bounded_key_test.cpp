// Tests for BoundedKey / BoundedCompare: the paper's ∞₁/∞₂ key extension
// (§4.1, Fig. 6). Every real key < ∞₁ < ∞₂; equal sentinels compare equal.
#include <gtest/gtest.h>

#include <climits>
#include <functional>
#include <string>

#include "core/bounded_key.hpp"

namespace efrb {
namespace {

using IntKey = BoundedKey<int>;
using IntCmp = BoundedCompare<int>;

TEST(BoundedKeyTest, FactoryClasses) {
  EXPECT_TRUE(IntKey::real(5).is_real());
  EXPECT_FALSE(IntKey::inf1().is_real());
  EXPECT_FALSE(IntKey::inf2().is_real());
  EXPECT_EQ(IntKey::inf1().cls, KeyClass::kInf1);
  EXPECT_EQ(IntKey::inf2().cls, KeyClass::kInf2);
}

TEST(BoundedCompareTest, RealKeysUseUserOrder) {
  IntCmp cmp;
  EXPECT_TRUE(cmp(IntKey::real(1), IntKey::real(2)));
  EXPECT_FALSE(cmp(IntKey::real(2), IntKey::real(1)));
  EXPECT_FALSE(cmp(IntKey::real(2), IntKey::real(2)));
}

TEST(BoundedCompareTest, EveryRealKeyBelowInf1) {
  IntCmp cmp;
  for (int k : {-1000000, -1, 0, 1, 1000000, INT_MAX}) {
    EXPECT_TRUE(cmp(IntKey::real(k), IntKey::inf1())) << k;
    EXPECT_FALSE(cmp(IntKey::inf1(), IntKey::real(k))) << k;
  }
}

TEST(BoundedCompareTest, Inf1BelowInf2) {
  IntCmp cmp;
  EXPECT_TRUE(cmp(IntKey::inf1(), IntKey::inf2()));
  EXPECT_FALSE(cmp(IntKey::inf2(), IntKey::inf1()));
}

TEST(BoundedCompareTest, EqualSentinelsCompareEqual) {
  IntCmp cmp;
  EXPECT_FALSE(cmp(IntKey::inf1(), IntKey::inf1()));
  EXPECT_FALSE(cmp(IntKey::inf2(), IntKey::inf2()));
}

TEST(BoundedCompareTest, SearchKeyLess) {
  IntCmp cmp;
  EXPECT_TRUE(cmp.less(1, IntKey::real(2)));
  EXPECT_FALSE(cmp.less(2, IntKey::real(2)));  // equal goes right
  EXPECT_FALSE(cmp.less(3, IntKey::real(2)));
  EXPECT_TRUE(cmp.less(INT_MAX, IntKey::inf1()));
  EXPECT_TRUE(cmp.less(INT_MAX, IntKey::inf2()));
}

TEST(BoundedCompareTest, SearchKeyEquals) {
  IntCmp cmp;
  EXPECT_TRUE(cmp.equals(7, IntKey::real(7)));
  EXPECT_FALSE(cmp.equals(7, IntKey::real(8)));
  EXPECT_FALSE(cmp.equals(7, IntKey::inf1()));
  EXPECT_FALSE(cmp.equals(7, IntKey::inf2()));
}

TEST(BoundedCompareTest, CustomComparatorIsRespected) {
  // Reverse order: with greater<int>, 9 < 1 in tree order.
  BoundedCompare<int, std::greater<int>> cmp;
  EXPECT_TRUE(cmp(BoundedKey<int>::real(9), BoundedKey<int>::real(1)));
  EXPECT_TRUE(cmp.less(9, BoundedKey<int>::real(1)));
  // Sentinels still dominate regardless of the user order.
  EXPECT_TRUE(cmp(BoundedKey<int>::real(-100), BoundedKey<int>::inf1()));
}

TEST(BoundedCompareTest, WorksWithStringKeys) {
  BoundedCompare<std::string> cmp;
  using SKey = BoundedKey<std::string>;
  EXPECT_TRUE(cmp(SKey::real("apple"), SKey::real("banana")));
  EXPECT_TRUE(cmp(SKey::real("zzzzz"), SKey::inf1()));
  EXPECT_TRUE(cmp.equals("kiwi", SKey::real("kiwi")));
}

TEST(BoundedCompareTest, IsStrictWeakOrderOnSamples) {
  IntCmp cmp;
  const IntKey samples[] = {IntKey::real(-5), IntKey::real(0), IntKey::real(5),
                            IntKey::inf1(), IntKey::inf2()};
  for (const auto& a : samples) {
    EXPECT_FALSE(cmp(a, a));  // irreflexive
    for (const auto& b : samples) {
      EXPECT_FALSE(cmp(a, b) && cmp(b, a));  // asymmetric
      for (const auto& c : samples) {
        if (cmp(a, b) && cmp(b, c)) { EXPECT_TRUE(cmp(a, c)); }  // transitive
      }
    }
  }
}

}  // namespace
}  // namespace efrb
