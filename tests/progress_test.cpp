// Non-blocking progress (§3/§5): a thread that crashes (here: is frozen
// indefinitely) in the middle of an update must not prevent other operations
// from completing. With locks this is exactly what fails — the lock dies with
// its holder. The EFRB tree must sail through because any thread blocked by a
// flag helps and moves on.
//
// Also reproduces §6's adversarial schedule showing Find is not wait-free:
// a Find can be forced to re-traverse by concurrent delete/re-insert cycles;
// bounded here, with the system-wide progress property holding throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "util/barrier.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

using HookedTree = EfrbTreeSet<int, std::less<int>, EpochReclaimer, CallbackTraits>;
thread_local int g_role = 0;

/// Freeze an operation of role 1 at `point` forever (until test teardown).
struct Freezer {
  YieldingBarrier reached{2};
  YieldingBarrier release{2};
  std::atomic<bool> armed{true};
  void install(HookPoint point) {
    CallbackTraits::at_fn = [this, point](HookPoint p) {
      if (g_role == 1 && p == point && armed.exchange(false)) {
        reached.arrive_and_wait();
        release.arrive_and_wait();  // parked until the test ends
      }
    };
  }
  ~Freezer() { CallbackTraits::reset(); }
};

TEST(ProgressTest, InsertFrozenAfterIFlagDoesNotBlockOthers) {
  HookedTree t;
  Freezer fz;
  fz.install(HookPoint::kAfterIFlag);

  std::thread frozen([&] {
    g_role = 1;
    t.insert(5555);  // freezes holding the root's IFlag
    g_role = 0;
  });
  fz.reached.arrive_and_wait();

  // Hundreds of operations across the whole key space must all complete.
  // (The very first blocked one helps the frozen insert; the rest proceed.)
  run_threads(3, [&](std::size_t tid) {
    for (int i = 0; i < 300; ++i) {
      const int k = static_cast<int>(tid) * 1000 + i;
      ASSERT_TRUE(t.insert(k));
      ASSERT_TRUE(t.contains(k));
      if (i % 2 == 0) { ASSERT_TRUE(t.erase(k)); }
    }
  });
  EXPECT_TRUE(t.contains(5555))
      << "some blocked operation must have helped the frozen insert";
  EXPECT_TRUE(t.validate().ok);

  fz.release.arrive_and_wait();
  frozen.join();
}

TEST(ProgressTest, DeleteFrozenAfterDFlagDoesNotBlockOthers) {
  HookedTree t;
  for (int k = 0; k < 8; ++k) t.insert(k * 10);
  Freezer fz;
  fz.install(HookPoint::kAfterDFlag);

  std::thread frozen([&] {
    g_role = 1;
    t.erase(30);  // freezes holding a DFlag
    g_role = 0;
  });
  fz.reached.arrive_and_wait();

  run_threads(3, [&](std::size_t tid) {
    for (int i = 0; i < 300; ++i) {
      const int k = 1000 + static_cast<int>(tid) * 1000 + i;
      ASSERT_TRUE(t.insert(k));
      ASSERT_TRUE(t.erase(k));
    }
  });
  // Helping is conservative (§3): since none of the ops above were blocked by
  // the frozen delete's flag, 30 may legitimately still be present here. The
  // progress property is that everything else completed (asserted above).
  EXPECT_TRUE(t.validate().ok);

  fz.release.arrive_and_wait();
  frozen.join();  // the unfrozen thread finishes its own delete
  EXPECT_FALSE(t.contains(30));
  EXPECT_TRUE(t.validate().ok);
}

TEST(ProgressTest, DeleteFrozenAfterMarkDoesNotBlockOthers) {
  HookedTree t;
  for (int k = 0; k < 8; ++k) t.insert(k * 10);
  Freezer fz;
  fz.install(HookPoint::kBeforeDChild);  // frozen between mark and dchild

  std::thread frozen([&] {
    g_role = 1;
    t.erase(30);
    g_role = 0;
  });
  fz.reached.arrive_and_wait();

  // Operations that traverse the marked node must help splice it and proceed.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.insert(31 + i * 100));
    ASSERT_TRUE(t.erase(31 + i * 100));
  }
  EXPECT_FALSE(t.contains(30));
  EXPECT_TRUE(t.validate().ok);

  fz.release.arrive_and_wait();
  frozen.join();
}

TEST(ProgressTest, FindsProceedThroughFrozenUpdate) {
  // Find never helps and never blocks: with an update frozen holding a flag,
  // lookups over the whole tree must complete (and see consistent data).
  HookedTree t;
  for (int k = 0; k < 64; ++k) t.insert(k);
  Freezer fz;
  fz.install(HookPoint::kAfterIFlag);

  std::thread frozen([&] {
    g_role = 1;
    t.insert(1000);
    g_role = 0;
  });
  fz.reached.arrive_and_wait();

  run_threads(4, [&](std::size_t) {
    for (int round = 0; round < 50; ++round) {
      for (int k = 0; k < 64; ++k) ASSERT_TRUE(t.contains(k));
      ASSERT_FALSE(t.contains(999));
    }
  });

  fz.release.arrive_and_wait();
  frozen.join();
}

TEST(ProgressTest, AdversarialFindSchedule_Section6) {
  // §6: starting from {1,2,3}, a Find(2) can be pushed back down the tree by
  // an adversary deleting and re-inserting 1 and 3 forever. We run the
  // adversary for a fixed number of cycles: the Find must still be running or
  // complete (we can't observe "still running" directly, so we check the
  // system property: the adversary's updates all complete, i.e. updates are
  // never starved by the reader), and once the adversary stops the Find
  // completes promptly — non-blocking, though not wait-free.
  EfrbTreeSet<int> t;
  for (int k : {1, 2, 3}) t.insert(k);

  std::atomic<bool> adversary_done{false};
  std::atomic<std::uint64_t> finds_completed{0};
  std::atomic<bool> stop_reader{false};

  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(t.contains(2));  // 2 is never removed
      finds_completed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int cycle = 0; cycle < 20000; ++cycle) {
    ASSERT_TRUE(t.erase(1));
    ASSERT_TRUE(t.insert(1));
    ASSERT_TRUE(t.erase(3));
    ASSERT_TRUE(t.insert(3));
  }
  adversary_done.store(true);

  stop_reader.store(true);
  reader.join();
  EXPECT_TRUE(adversary_done.load());
  // Sanity: the reader made progress too on this (preemptive) host; the
  // *guarantee* is only non-blocking, so we do not assert a rate.
  RecordProperty("finds_completed",
                 static_cast<int>(finds_completed.load()));
  EXPECT_TRUE(t.validate().ok);
}

TEST(ProgressTest, ManyFrozenOperationsStillAllowProgress) {
  // Freeze several updates at once (distinct subtrees); the rest of the key
  // space must remain fully operable.
  HookedTree t;
  for (int k = 0; k < 100; k += 10) t.insert(k);

  YieldingBarrier reached(4), release(4);
  std::atomic<int> arm_count{3};
  CallbackTraits::at_fn = [&](HookPoint p) {
    if (g_role == 1 && p == HookPoint::kAfterIFlag) {
      if (arm_count.fetch_sub(1) > 0) {
        reached.arrive_and_wait();
        release.arrive_and_wait();
      }
    }
  };

  std::vector<std::thread> frozen;
  for (int i = 0; i < 3; ++i) {
    frozen.emplace_back([&, i] {
      g_role = 1;
      t.insert(1000 + i * 500);  // lands in different subtrees
      g_role = 0;
    });
  }
  reached.arrive_and_wait();

  for (int i = 0; i < 200; ++i) {
    const int k = 101 + i * 2;  // odd keys: disjoint from the prefill (tens)
    ASSERT_TRUE(t.insert(k));
    ASSERT_TRUE(t.erase(k));
  }
  EXPECT_TRUE(t.validate().ok);

  release.arrive_and_wait();
  for (auto& th : frozen) th.join();
  CallbackTraits::reset();
}

}  // namespace
}  // namespace efrb
