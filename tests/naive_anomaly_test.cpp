// Reproduction of Figure 3: "Problems can occur if updates only CAS one child
// pointer."
//
// Using the NaiveCasBst's prepare/commit API we replay the paper's two
// interleavings deterministically (keys A..H -> 1..8):
//
//   (b) Delete(C) and Delete(E) both commit -> E is still reachable although
//       its delete was acknowledged (lost delete);
//   (c) Delete(E) and Insert(F) both commit -> F is unreachable although its
//       insert was acknowledged (lost insert).
//
// The same logical schedules driven through the EFRB tree (freezing one
// operation at the equivalent point with the pause hooks) must NOT produce
// the anomalies — the flag/mark protocol forces one of the operations to
// retry. This is the paper's core motivation made executable.
#include <gtest/gtest.h>

#include "leak_check_opt_out.hpp"  // LeakyReclaimer / NaiveCasBst leak by design

#include <algorithm>
#include <thread>
#include <vector>

#include "baselines/naive_cas_bst.hpp"
#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace efrb {
namespace {

// Keys as in Fig. 3: A=1 B=2 C=3 D=4 E=5 F=6 G=7 H=8.
constexpr int A = 1, C = 3, E = 5, F = 6, H = 8;

/// Builds the Fig. 3(a) tree {A, C, E, H} (internal routing keys B, D, G
/// arise from the insertion order).
template <typename SetT>
void build_fig3a(SetT& t) {
  for (int k : {A, C, E, H}) ASSERT_TRUE(t.insert(k));
}

TEST(NaiveAnomalyTest, Fig3b_ConcurrentDeletesLoseADelete) {
  NaiveCasBst<int> t;
  build_fig3a(t);

  // Both deletes read their windows from the same initial tree...
  auto del_c = t.prepare_erase(C);
  auto del_e = t.prepare_erase(E);
  ASSERT_TRUE(del_c.applicable);
  ASSERT_TRUE(del_e.applicable);
  // ...then perform their CAS steps right after each other (paper's words).
  EXPECT_TRUE(t.commit(del_c));
  EXPECT_TRUE(t.commit(del_e));  // acknowledged!

  const auto keys = t.keys();
  EXPECT_EQ(keys, (std::vector<int>{A, E, H}))
      << "Fig. 3(b): E must still be reachable despite its successful delete";
  EXPECT_TRUE(t.contains(E)) << "the lost-delete anomaly";
}

TEST(NaiveAnomalyTest, Fig3c_DeleteInsertLosesAnInsert) {
  NaiveCasBst<int> t;
  build_fig3a(t);

  auto del_e = t.prepare_erase(E);
  auto ins_f = t.prepare_insert(F);
  ASSERT_TRUE(del_e.applicable);
  ASSERT_TRUE(ins_f.applicable);
  EXPECT_TRUE(t.commit(del_e));
  EXPECT_TRUE(t.commit(ins_f));  // acknowledged!

  const auto keys = t.keys();
  EXPECT_EQ(keys, (std::vector<int>{A, C, H}))
      << "Fig. 3(c): F must be unreachable despite its successful insert";
  EXPECT_FALSE(t.contains(F)) << "the lost-insert anomaly";
}

TEST(NaiveAnomalyTest, NaiveTreeCorruptsUnderStress) {
  // Beyond the two curated schedules: under open concurrency the naive tree's
  // final key set diverges from the per-key flip parity oracle. (Each
  // successful insert/erase flips a key's presence, so presence == odd flip
  // count in any linearizable set.) Updates yield between reading their
  // window and committing their CAS, modelling mid-update preemption; across
  // 10 seeds at least one run must corrupt — it reliably does in dozens of
  // keys — while the identical load on EFRB (next tests) never diverges.
  int total_divergences = 0;
  for (std::uint64_t seed = 1; seed <= 10 && total_divergences == 0; ++seed) {
    NaiveCasBst<int> t;
    std::vector<std::atomic<std::uint64_t>> flips(16);
    YieldingBarrier start(2);
    auto worker = [&](std::uint64_t salt) {
      Xoshiro256 rng(seed * 97 + salt);
      start.arrive_and_wait();
      for (int i = 0; i < 4000; ++i) {
        const int k = static_cast<int>(rng.next_below(16));
        auto ticket = (rng.next() & 1) != 0 ? t.prepare_insert(k)
                                            : t.prepare_erase(k);
        if (!ticket.applicable) continue;
        std::this_thread::yield();  // preempted between read and CAS
        if (t.commit(ticket)) flips[static_cast<std::size_t>(k)].fetch_add(1);
      }
    };
    std::thread other([&] { worker(2); });
    worker(1);
    other.join();
    for (int k = 0; k < 16; ++k) {
      const bool expected =
          (flips[static_cast<std::size_t>(k)].load() % 2) == 1;
      if (t.contains(k) != expected) ++total_divergences;
    }
  }
  RecordProperty("naive_divergent_keys", total_divergences);
  EXPECT_GT(total_divergences, 0)
      << "the naive tree failed to corrupt in 10 seeded runs — the race "
         "model (yield between window read and CAS) has regressed";
}

// ---------------------------------------------------------------------------
// The same schedules on the EFRB tree: no anomaly possible.
// ---------------------------------------------------------------------------

using HookedTree = EfrbTreeSet<int, std::less<int>, EpochReclaimer, CallbackTraits>;
thread_local int g_role = 0;

TEST(EfrbAntiAnomalyTest, Fig3bScheduleIsCorrectOnEfrb) {
  // Freeze Delete(C) after it read its window and flagged the grandparent but
  // before it can mark/splice; run Delete(E) to completion; resume. The EFRB
  // protocol forces the interleaving to behave like some sequential order:
  // both deletes succeed and BOTH keys are gone.
  HookedTree t;
  build_fig3a(t);

  YieldingBarrier reached(2), resume(2);
  std::atomic<bool> armed{true};
  CallbackTraits::at_fn = [&](HookPoint p) {
    if (g_role == 1 && p == HookPoint::kAfterDFlag &&
        armed.exchange(false)) {
      reached.arrive_and_wait();
      resume.arrive_and_wait();
    }
  };

  std::thread frozen([&] {
    g_role = 1;
    EXPECT_TRUE(t.erase(C));
    g_role = 0;
  });
  reached.arrive_and_wait();
  EXPECT_TRUE(t.erase(E));
  resume.arrive_and_wait();
  frozen.join();
  CallbackTraits::reset();

  EXPECT_FALSE(t.contains(C));
  EXPECT_FALSE(t.contains(E)) << "EFRB must not lose the delete of E";
  EXPECT_TRUE(t.contains(A));
  EXPECT_TRUE(t.contains(H));
  EXPECT_TRUE(t.validate().ok);
}

TEST(EfrbAntiAnomalyTest, Fig3cScheduleIsCorrectOnEfrb) {
  HookedTree t;
  build_fig3a(t);

  YieldingBarrier reached(2), resume(2);
  std::atomic<bool> armed{true};
  CallbackTraits::at_fn = [&](HookPoint p) {
    if (g_role == 1 && p == HookPoint::kAfterDFlag &&
        armed.exchange(false)) {
      reached.arrive_and_wait();
      resume.arrive_and_wait();
    }
  };

  std::thread frozen([&] {
    g_role = 1;
    EXPECT_TRUE(t.erase(E));
    g_role = 0;
  });
  reached.arrive_and_wait();
  EXPECT_TRUE(t.insert(F));
  resume.arrive_and_wait();
  frozen.join();
  CallbackTraits::reset();

  EXPECT_FALSE(t.contains(E));
  EXPECT_TRUE(t.contains(F)) << "EFRB must not lose the insert of F";
  EXPECT_TRUE(t.validate().ok);
  // One of the two operations was forced to retry or help; the final state is
  // nevertheless the sequential outcome.
  const auto v = t.validate();
  EXPECT_EQ(v.real_leaves, 4u);  // {A, C, F, H}
}

TEST(EfrbAntiAnomalyTest, StressParityOracleHolds) {
  // The oracle that the naive tree violates must hold exactly for EFRB under
  // the same randomized racing load (yields maximizing interleaving).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EfrbTreeSet<int> t;
    std::vector<std::atomic<std::uint64_t>> flips(16);
    YieldingBarrier start(2);
    auto worker = [&](std::uint64_t salt) {
      Xoshiro256 rng(seed * 97 + salt);
      start.arrive_and_wait();
      for (int i = 0; i < 4000; ++i) {
        const int k = static_cast<int>(rng.next_below(16));
        std::this_thread::yield();
        const bool ok = (rng.next() & 1) != 0 ? t.insert(k) : t.erase(k);
        if (ok) flips[static_cast<std::size_t>(k)].fetch_add(1);
      }
    };
    std::thread other([&] { worker(2); });
    worker(1);
    other.join();
    for (int k = 0; k < 16; ++k) {
      const bool expected =
          (flips[static_cast<std::size_t>(k)].load() % 2) == 1;
      ASSERT_EQ(t.contains(k), expected) << "seed " << seed << " key " << k;
    }
    ASSERT_TRUE(t.validate().ok);
  }
}

}  // namespace
}  // namespace efrb
