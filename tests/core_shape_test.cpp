// Structural reproduction of Figures 1, 2 and 6: the node arithmetic of
// leaf-oriented updates (insert replaces a leaf with a three-node subtree;
// delete removes a leaf and its parent) and the sentinel skeleton of the
// empty/non-empty tree.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/efrb_tree.hpp"

namespace efrb {
namespace {

using Tree = EfrbTreeSet<int>;

// --------------------------- Figure 6 -------------------------------------

TEST(SentinelShapeTest, EmptyTreeIsFig6a) {
  // Fig. 6(a): Root(∞₂) with leaf children ∞₁ and ∞₂ — exactly one internal
  // node, no real leaves, height 2.
  Tree t;
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.internals, 1u);
  EXPECT_EQ(v.real_leaves, 0u);
  EXPECT_EQ(v.height, 2u);
}

TEST(SentinelShapeTest, SingleKeyTreeIsFig6b) {
  // Fig. 6(b): first insertion replaces the ∞₁ leaf with
  // Internal(∞₁){Leaf(k), Leaf(∞₁)} — two internals, height 3.
  Tree t;
  t.insert(5);
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.internals, 2u);
  EXPECT_EQ(v.real_leaves, 1u);
  EXPECT_EQ(v.height, 3u);
}

TEST(SentinelShapeTest, DrainReturnsToFig6a) {
  Tree t;
  for (int k : {5, 3, 8, 1}) t.insert(k);
  for (int k : {5, 3, 8, 1}) t.erase(k);
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.internals, 1u);
  EXPECT_EQ(v.real_leaves, 0u);
  EXPECT_EQ(v.height, 2u);
}

TEST(SentinelShapeTest, SentinelsAreNotDeletable) {
  // §4.1: "Deletion of the leaves with dummy keys is not permitted" — there
  // is no API surface to address them; erasing any real key on an empty tree
  // must not disturb the skeleton.
  Tree t;
  EXPECT_FALSE(t.erase(0));
  EXPECT_FALSE(t.erase(INT32_MAX));
  EXPECT_FALSE(t.erase(INT32_MIN));
  const auto v = t.validate();
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.internals, 1u);
}

TEST(SentinelShapeTest, TreeAlwaysHasAtLeastOneInternalAndTwoLeaves) {
  Tree t;
  for (int round = 0; round < 20; ++round) {
    t.insert(round);
    auto v = t.validate();
    EXPECT_TRUE(v.ok);
    EXPECT_GE(v.internals, 1u);
    t.erase(round);
    v = t.validate();
    EXPECT_TRUE(v.ok);
    EXPECT_GE(v.internals, 1u);  // the sentinel skeleton persists
  }
}

// --------------------------- Figure 1 (insert) ----------------------------

TEST(InsertShapeTest, InsertionAddsExactlyOneInternalAndOneRealLeaf) {
  Tree t;
  std::size_t prev_internals = t.validate().internals;
  for (int k : {40, 20, 60, 10, 30, 50, 70}) {
    ASSERT_TRUE(t.insert(k));
    const auto v = t.validate();
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_EQ(v.internals, prev_internals + 1)
        << "Fig. 1: an insert replaces one leaf by a 3-node subtree";
    prev_internals = v.internals;
  }
}

TEST(InsertShapeTest, NewInternalKeyIsMaxOfLeafPair) {
  // Paper line 53: the new internal node's key is max(k, l->key) and the
  // smaller key becomes the left child. Verify behaviourally: after inserting
  // 10 then 5, searching 7 must end at the 10-side boundary correctly.
  Tree t;
  t.insert(10);
  t.insert(5);  // replaces leaf 10: Internal(10){Leaf 5, Leaf 10}
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.contains(10));
  EXPECT_FALSE(t.contains(7));
  t.insert(7);  // goes to the leaf 10? no: 7 < 10 -> left subtree of that node
  EXPECT_TRUE(t.contains(7));
  const auto v = t.validate();
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(InsertShapeTest, LeafOrientedInvariantInternalsEqualLeavesMinusOne) {
  // In a full binary tree: #internal = #leaf - 1. Leaves = real + 2 sentinels.
  Tree t;
  for (int k = 0; k < 64; ++k) t.insert(k * 3);
  const auto v = t.validate();
  ASSERT_TRUE(v.ok);
  EXPECT_EQ(v.internals, v.real_leaves + 2 - 1);
}

// --------------------------- Figure 2 (delete) ----------------------------

TEST(DeleteShapeTest, DeletionRemovesExactlyOneInternalAndOneRealLeaf) {
  Tree t;
  for (int k : {40, 20, 60, 10, 30, 50, 70}) t.insert(k);
  std::size_t prev_internals = t.validate().internals;
  for (int k : {30, 10, 70, 40}) {
    ASSERT_TRUE(t.erase(k));
    const auto v = t.validate();
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_EQ(v.internals, prev_internals - 1)
        << "Fig. 2: a delete removes the leaf and its parent";
    prev_internals = v.internals;
  }
}

TEST(DeleteShapeTest, SiblingIsPromotedIntact) {
  // Fig. 2: deleting C makes C's sibling subtree (α) the child of C's former
  // grandparent. Insert a 3-key cluster, delete the middle, check the other
  // two survive with the order intact.
  Tree t;
  for (int k : {100, 50, 150, 25, 75}) t.insert(k);
  ASSERT_TRUE(t.erase(50));
  for (int k : {100, 150, 25, 75}) EXPECT_TRUE(t.contains(k)) << k;
  EXPECT_FALSE(t.contains(50));
  const auto v = t.validate();
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(DeleteShapeTest, DeleteRootMostRealKey) {
  // Deleting the key whose internal node sits highest exercises the dchild
  // CAS at the sentinel boundary (new child's key compared against ∞-keys in
  // CAS-Child, lines 113-118).
  Tree t;
  t.insert(1);  // the single real leaf hangs under the ∞₁ internal
  ASSERT_TRUE(t.erase(1));
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.validate().ok);
}

TEST(DeleteShapeTest, AlternatingInsertEraseKeepsArithmeticConsistent) {
  Tree t;
  for (int i = 0; i < 200; ++i) {
    t.insert(i);
    if (i % 2 == 1) t.erase(i - 1);
    const auto v = t.validate();
    ASSERT_TRUE(v.ok) << "iteration " << i << ": " << v.error;
    ASSERT_EQ(v.internals, v.real_leaves + 1);
  }
}

}  // namespace
}  // namespace efrb
