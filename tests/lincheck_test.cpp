// Linearizability checking: first unit-test the checker itself on hand-built
// histories with known verdicts, then record real concurrent histories from
// the EFRB tree (and, as a control, from the intentionally broken naive tree)
// and check them.
#include <gtest/gtest.h>

#include "leak_check_opt_out.hpp"  // LeakyReclaimer / NaiveCasBst leak by design

#include <atomic>
#include <vector>

#include "baselines/naive_cas_bst.hpp"
#include "core/efrb_tree.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/history.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

using lincheck::Checker;
using lincheck::History;
using lincheck::Operation;
using lincheck::Recorder;

Operation op(OpType t, std::uint64_t k, bool r, std::uint64_t inv,
             std::uint64_t res, unsigned thread = 0) {
  return Operation{t, k, r, inv, res, thread};
}

TEST(CheckerUnitTest, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(Checker::check({}));
}

TEST(CheckerUnitTest, SequentialLegalHistory) {
  History h = {
      op(OpType::kInsert, 1, true, 0, 1),
      op(OpType::kFind, 1, true, 2, 3),
      op(OpType::kErase, 1, true, 4, 5),
      op(OpType::kFind, 1, false, 6, 7),
  };
  EXPECT_TRUE(Checker::check(h));
}

TEST(CheckerUnitTest, SequentialIllegalHistory) {
  // Find(1)=true before any insert: not linearizable from the empty set.
  History h = {
      op(OpType::kFind, 1, true, 0, 1),
      op(OpType::kInsert, 1, true, 2, 3),
  };
  EXPECT_FALSE(Checker::check(h));
}

TEST(CheckerUnitTest, RealTimeOrderIsRespected) {
  // Insert(1) completed strictly before Find(1) started; Find must see it.
  History h = {
      op(OpType::kInsert, 1, true, 0, 1, 0),
      op(OpType::kFind, 1, false, 2, 3, 1),
  };
  EXPECT_FALSE(Checker::check(h));
}

TEST(CheckerUnitTest, OverlapPermitsEitherOrder) {
  // Find overlaps the Insert: both outcomes are linearizable.
  History sees = {
      op(OpType::kInsert, 1, true, 0, 3, 0),
      op(OpType::kFind, 1, true, 1, 2, 1),
  };
  History misses = {
      op(OpType::kInsert, 1, true, 0, 3, 0),
      op(OpType::kFind, 1, false, 1, 2, 1),
  };
  EXPECT_TRUE(Checker::check(sees));
  EXPECT_TRUE(Checker::check(misses));
}

TEST(CheckerUnitTest, DoubleSuccessfulInsertNotLinearizable) {
  // Two non-overlapping successful inserts of the same key with no erase
  // between them cannot be linearized.
  History h = {
      op(OpType::kInsert, 5, true, 0, 1, 0),
      op(OpType::kInsert, 5, true, 2, 3, 1),
  };
  EXPECT_FALSE(Checker::check(h));
}

TEST(CheckerUnitTest, ConcurrentInsertsOneMustFail) {
  // Overlapping: one true one false is fine; both true is not.
  History ok = {
      op(OpType::kInsert, 5, true, 0, 3, 0),
      op(OpType::kInsert, 5, false, 1, 2, 1),
  };
  History bad = {
      op(OpType::kInsert, 5, true, 0, 3, 0),
      op(OpType::kInsert, 5, true, 1, 2, 1),
  };
  EXPECT_TRUE(Checker::check(ok));
  EXPECT_FALSE(Checker::check(bad));
}

TEST(CheckerUnitTest, LostDeleteShapeIsRejected) {
  // The Fig. 3(b) anomaly expressed as a history: Delete(E)=true completes,
  // then a later Find(E)=true with nothing re-inserting E.
  History h = {
      op(OpType::kInsert, 4, true, 0, 1, 0),
      op(OpType::kErase, 4, true, 2, 3, 0),
      op(OpType::kFind, 4, true, 4, 5, 1),
  };
  EXPECT_FALSE(Checker::check(h));
}

TEST(CheckerUnitTest, InitialStatePropagates) {
  // With key 3 initially present, Find(3)=true is legal without an insert.
  History h = {op(OpType::kFind, 3, true, 0, 1)};
  EXPECT_TRUE(Checker::check(h, /*initial=*/std::uint64_t{1} << 3));
  EXPECT_FALSE(Checker::check(h, /*initial=*/0));
}

TEST(CheckerUnitTest, TrickyInterleavingNeedsSearch) {
  // Three overlapping ops where only one ordering is legal:
  // Erase(2)=true requires Insert(2) first; Find(2)=false must go before the
  // insert or after the erase.
  History h = {
      op(OpType::kInsert, 2, true, 0, 10, 0),
      op(OpType::kErase, 2, true, 1, 9, 1),
      op(OpType::kFind, 2, false, 2, 8, 2),
  };
  EXPECT_TRUE(Checker::check(h));
}

TEST(CheckerWindowTest, SplitsAtQuiescence) {
  // Three bursts separated by quiescent gaps; 30 ops total exceeds kMaxWindow
  // but each burst fits. Each burst inserts then erases keys 0..4, leaving
  // the state empty at every cut.
  History h;
  std::uint64_t ts = 0;
  for (int burst = 0; burst < 3; ++burst) {
    for (std::uint64_t k = 0; k < 5; ++k) {
      h.push_back(op(OpType::kInsert, k, true, ts, ts + 1));
      ts += 2;
      h.push_back(op(OpType::kErase, k, true, ts, ts + 1));
      ts += 2;
    }
  }
  ASSERT_GT(h.size(), Checker::kMaxWindow);
  const auto r = Checker::check_windowed(h);
  EXPECT_EQ(r.windows_skipped, 0u);
  EXPECT_GE(r.windows_checked, 3u);
  EXPECT_TRUE(r.linearizable);
}

TEST(CheckerWindowTest, StateThreadsAcrossWindows) {
  History h = {
      op(OpType::kInsert, 1, true, 0, 1),   // window 1
      op(OpType::kFind, 1, true, 10, 11),   // window 2: must see the insert
  };
  EXPECT_TRUE(Checker::check_windowed(h).linearizable);
  History bad = {
      op(OpType::kInsert, 1, true, 0, 1),
      op(OpType::kFind, 1, false, 10, 11),
  };
  EXPECT_FALSE(Checker::check_windowed(bad).linearizable);
}

// ---------------------------------------------------------------------------
// Recorded histories from the real tree.
// ---------------------------------------------------------------------------

template <typename SetT>
History record_bursts(SetT& set, unsigned threads, int bursts,
                      int ops_per_burst, std::uint64_t key_range,
                      std::uint64_t seed) {
  Recorder rec(threads);
  for (int b = 0; b < bursts; ++b) {
    run_threads(threads, [&](std::size_t tid) {
      Xoshiro256 rng(seed + tid * 101 + static_cast<std::uint64_t>(b) * 7);
      for (int i = 0; i < ops_per_burst; ++i) {
        const std::uint64_t k = rng.next_below(key_range);
        const auto t0 = rec.now();
        switch (rng.next_below(3)) {
          case 0:
            rec.record(static_cast<unsigned>(tid), OpType::kInsert, k,
                       set.insert(static_cast<int>(k)), t0);
            break;
          case 1:
            rec.record(static_cast<unsigned>(tid), OpType::kErase, k,
                       set.erase(static_cast<int>(k)), t0);
            break;
          default:
            rec.record(static_cast<unsigned>(tid), OpType::kFind, k,
                       set.contains(static_cast<int>(k)), t0);
        }
      }
    });  // join = quiescent point between bursts
  }
  return rec.collect();
}

TEST(EfrbLinearizabilityTest, RecordedHistoriesAreLinearizable) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EfrbTreeSet<int> t;
    History h = record_bursts(t, /*threads=*/3, /*bursts=*/60,
                              /*ops_per_burst=*/4, /*key_range=*/6, seed);
    const auto r = Checker::check_windowed(h);
    EXPECT_TRUE(r.linearizable) << "seed " << seed;
    EXPECT_EQ(r.windows_skipped, 0u);
    EXPECT_GE(r.windows_checked, 1u);
  }
}

TEST(EfrbLinearizabilityTest, HighContentionSingleKey) {
  EfrbTreeSet<int> t;
  History h = record_bursts(t, /*threads=*/4, /*bursts=*/40,
                            /*ops_per_burst=*/3, /*key_range=*/1, 99);
  const auto r = Checker::check_windowed(h);
  EXPECT_TRUE(r.linearizable);
}

TEST(NaiveLinearizabilityTest, BrokenScheduleProducesNonLinearizableHistory) {
  // Drive the naive tree through the Fig. 3(b) schedule while recording; the
  // checker must reject the resulting history. (The two "concurrent" deletes
  // are made to overlap by recording their invocations before both commits.)
  NaiveCasBst<int> t;
  Recorder rec(2);
  for (int k : {1, 3, 5, 8}) {  // recorded so the checker knows the prefill
    const auto inv = rec.now();
    rec.record(0, OpType::kInsert, static_cast<std::uint64_t>(k), t.insert(k),
               inv);
  }

  auto del_c = t.prepare_erase(3);
  auto del_e = t.prepare_erase(5);
  const auto inv_c = rec.now();
  const auto inv_e = rec.now();
  const bool ok_c = t.commit(del_c);
  const bool ok_e = t.commit(del_e);
  rec.record(0, OpType::kErase, 3, ok_c, inv_c);
  rec.record(1, OpType::kErase, 5, ok_e, inv_e);
  // Post-quiescence find observes the anomaly.
  const auto inv_f = rec.now();
  rec.record(0, OpType::kFind, 5, t.contains(5), inv_f);

  ASSERT_TRUE(ok_c);
  ASSERT_TRUE(ok_e);
  const auto r = Checker::check_windowed(rec.collect());
  EXPECT_FALSE(r.linearizable)
      << "the lost-delete history must be rejected by the checker";
}

}  // namespace
}  // namespace efrb
