// Concurrent correctness of the EFRB tree under open scheduling: parity
// oracles, disjoint-access parallelism, reclamation under churn, map values
// under concurrent assignment, and post-run structural validation. These are
// the tests that would catch lost updates, double frees, stale reads through
// retired nodes, and broken tree shape.
#include <gtest/gtest.h>

#include "leak_check_opt_out.hpp"  // LeakyReclaimer / NaiveCasBst leak by design

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "core/efrb_tree.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

// scripts/check.sh rebuilds this suite with non-default traits:
//   -DEFRB_TEST_FORCE_STATS — StatsTraits, so every schedule also races the
//     per-handle stat shards and the shared counter block under TSan;
//   -DEFRB_TEST_FORCE_HOOKS — live on_cas/at callbacks, so every debug-hook
//     emission point executes real code under full concurrency (NoopTraits
//     would compile them away).
#if defined(EFRB_TEST_FORCE_HOOKS)
struct ForcedHookTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static inline std::atomic<std::uint64_t> cas_events{0};
  static inline std::atomic<std::uint64_t> point_events{0};
  static void on_cas(CasStep, bool, const void*) noexcept {
    cas_events.fetch_add(1, std::memory_order_relaxed);
  }
  static void at(HookPoint) noexcept {
    point_events.fetch_add(1, std::memory_order_relaxed);
  }
};
using TestTraits = ForcedHookTraits;
#elif defined(EFRB_TEST_FORCE_STATS)
using TestTraits = StatsTraits;
#elif defined(EFRB_TEST_POOLED)
// -DEFRB_TEST_POOLED — PooledTraits, so every schedule also races the
// ObjectPool's cache/free-list machinery (alloc, recycle-through-reclaimer,
// cross-thread block adoption) under the sanitizers.
using TestTraits = PooledTraits;
#else
using TestTraits = NoopTraits;
#endif

template <typename Key, typename Reclaimer>
using TestTreeSet = EfrbTreeSet<Key, std::less<Key>, Reclaimer, TestTraits>;

/// Sets the stop flag when the scope exits — including early exits from a
/// failed ASSERT_*, which would otherwise leave the churn threads spinning
/// forever and turn the failure into a timeout.
struct StopOnExit {
  std::atomic<bool>& stop;
  ~StopOnExit() { stop.store(true); }
};

template <typename Reclaimer>
class ConcurrentTreeTest : public ::testing::Test {};

using Reclaimers =
    ::testing::Types<LeakyReclaimer, EpochReclaimer, HazardReclaimer>;
TYPED_TEST_SUITE(ConcurrentTreeTest, Reclaimers);

TYPED_TEST(ConcurrentTreeTest, ParityOracleUnderContention) {
  // Presence of key k after quiescence == (successful flips of k) mod 2.
  TestTreeSet<int, TypeParam> t;
  constexpr int kKeys = 48;
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 6000;
  std::vector<std::atomic<std::uint64_t>> flips(kKeys);

  run_threads(kThreads, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 7 + 3);
    for (int i = 0; i < kOpsPerThread; ++i) {
      const int k = static_cast<int>(rng.next_below(kKeys));
      switch (rng.next_below(3)) {
        case 0:
          if (t.insert(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        case 1:
          if (t.erase(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        default:
          t.contains(k);
      }
    }
  });

  for (int k = 0; k < kKeys; ++k) {
    const bool expected = (flips[static_cast<std::size_t>(k)].load() % 2) == 1;
    EXPECT_EQ(t.contains(k), expected) << "key " << k;
  }
  const auto v = t.validate();
  EXPECT_TRUE(v.ok) << v.error;
}

TYPED_TEST(ConcurrentTreeTest, DisjointRangesNeverInterfere) {
  // §1: "Updates to different parts of the tree do not interfere" — each
  // thread owns a private key stripe; every one of its operations must
  // succeed exactly as in a single-threaded run.
  TestTreeSet<int, TypeParam> t;
  constexpr int kThreads = 8;
  constexpr int kStripe = 512;

  run_threads(kThreads, [&](std::size_t tid) {
    const int base = static_cast<int>(tid) * kStripe;
    for (int i = 0; i < kStripe; ++i) ASSERT_TRUE(t.insert(base + i));
    for (int i = 0; i < kStripe; ++i) ASSERT_TRUE(t.contains(base + i));
    for (int i = 0; i < kStripe; i += 2) ASSERT_TRUE(t.erase(base + i));
    for (int i = 1; i < kStripe; i += 2) ASSERT_TRUE(t.contains(base + i));
    for (int i = 0; i < kStripe; i += 2) ASSERT_FALSE(t.contains(base + i));
  });

  const auto v = t.validate();
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, kThreads * kStripe / 2u);
}

TYPED_TEST(ConcurrentTreeTest, ReadersSeeOnlyCommittedStates) {
  // Writers insert k then k+delta as a pair and remove them as a pair; since
  // the pair is not atomic the readers may see any prefix, but never a key
  // that was *never* inserted, and membership of an untouched pivot key is
  // stable throughout.
  TestTreeSet<int, TypeParam> t;
  t.insert(500000);  // pivot, never touched again
  std::atomic<bool> stop{false};

  run_threads(4, [&](std::size_t tid) {
    if (tid == 0) {  // reader
      StopOnExit guard{stop};
      Xoshiro256 rng(1);
      for (int i = 0; i < 40000; ++i) {
        ASSERT_TRUE(t.contains(500000));
        const int probe = static_cast<int>(rng.next_below(1000));
        t.contains(probe);  // must terminate; value is schedule-dependent
      }
      stop.store(true);
    } else {  // writers on disjoint pair families
      Xoshiro256 rng(tid);
      const int base = static_cast<int>(tid) * 1000;
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = base + static_cast<int>(rng.next_below(400));
        t.insert(k);
        t.insert(k + 400);
        t.erase(k);
        t.erase(k + 400);
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);
}

TEST(ConcurrentReclamationTest, NodesAreActuallyFreedUnderChurn) {
  EfrbTreeSet<int> t;  // EpochReclaimer by default
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid + 11);
    for (int i = 0; i < 20000; ++i) {
      const int k = static_cast<int>(rng.next_below(256));
      if (i % 2 == 0) t.insert(k);
      else t.erase(k);
    }
    // Drain this worker's own retire list before exiting: retired entries
    // live in per-thread slots, so without this the observable freed count
    // at join time is schedule-dependent.
    t.reclaimer().flush();
  });
  // 80k updates on 256 keys: without reclamation this would strand tens of
  // thousands of nodes. The exact count is schedule-dependent; require a
  // substantial fraction to have been freed already (the rest drain on
  // destruction — ASan verifies nothing leaks or double-frees).
  EXPECT_GT(t.reclaimer().freed_count(), 10000u);
  EXPECT_TRUE(t.validate().ok);
}

TEST(ConcurrentMapTest, ConcurrentAssignLastWriterWins) {
  // insert_or_assign from many threads on one key: the final value must be
  // one of the written values (no torn/garbage value), and get() during the
  // run always returns a complete written value.
  EfrbTreeMap<int, std::uint64_t> m;
  constexpr std::uint64_t kMagic = 0xabcd000000000000ULL;
  run_threads(6, [&](std::size_t tid) {
    Xoshiro256 rng(tid);
    for (int i = 0; i < 4000; ++i) {
      m.insert_or_assign(7, kMagic | (tid << 16) | static_cast<unsigned>(i % 1000));
      const auto v = m.get(7);
      if (v.has_value()) {
        ASSERT_EQ(*v & 0xffff000000000000ULL, kMagic) << "torn value";
      }
    }
  });
  const auto final_v = m.get(7);
  ASSERT_TRUE(final_v.has_value());
  EXPECT_EQ(*final_v & 0xffff000000000000ULL, kMagic);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.validate().ok);
}

TEST(ConcurrentMapTest, MixedMapOperationsParityOracle) {
  EfrbTreeMap<int, int> m;
  constexpr int kKeys = 32;
  std::vector<std::atomic<std::uint64_t>> flips(kKeys);
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 13 + 5);
    for (int i = 0; i < 5000; ++i) {
      const int k = static_cast<int>(rng.next_below(kKeys));
      switch (rng.next_below(4)) {
        case 0:
          if (m.insert(k, k * 100)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        case 1:
          if (m.erase(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        case 2: {
          const auto v = m.get(k);
          if (v.has_value()) { ASSERT_EQ(*v, k * 100); }
          break;
        }
        default:
          m.contains(k);
      }
    }
  });
  for (int k = 0; k < kKeys; ++k) {
    const bool expected = (flips[static_cast<std::size_t>(k)].load() % 2) == 1;
    EXPECT_EQ(m.contains(k), expected) << "key " << k;
  }
}

TEST(ConcurrentMinMaxTest, OrderedQueriesUnderChurn) {
  // min/max must always return either nullopt or a key that was a plausible
  // extreme: we keep fixed fences (0 and 1000) and churn strictly inside, so
  // min()==0 and max()==1000 at all times.
  EfrbTreeSet<int> t;
  t.insert(0);
  t.insert(1000);
  std::atomic<bool> stop{false};
  run_threads(4, [&](std::size_t tid) {
    if (tid == 0) {
      StopOnExit guard{stop};
      for (int i = 0; i < 20000; ++i) {
        ASSERT_EQ(t.min_key(), std::optional<int>(0));
        ASSERT_EQ(t.max_key(), std::optional<int>(1000));
      }
      stop.store(true);
    } else {
      Xoshiro256 rng(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = 1 + static_cast<int>(rng.next_below(998));
        t.insert(k);
        t.erase(k);
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);
}

TEST(ConcurrentStressTest, HighContentionTinyKeyRange) {
  // Worst case for the protocol: every operation collides near the root.
  EfrbTreeSet<int> t;
  std::vector<std::atomic<std::uint64_t>> flips(4);
  run_threads(8, [&](std::size_t tid) {
    Xoshiro256 rng(tid);
    for (int i = 0; i < 5000; ++i) {
      const int k = static_cast<int>(rng.next_below(4));
      if (rng.next_below(2) == 0) {
        if (t.insert(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
      } else {
        if (t.erase(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
      }
    }
  });
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(t.contains(k),
              (flips[static_cast<std::size_t>(k)].load() % 2) == 1);
  }
  EXPECT_TRUE(t.validate().ok);
}

TEST(ConcurrentStressTest, RepeatedTreesDoNotInterfere) {
  // Many short-lived trees sharing threads exercises the reclaimer's
  // slot/lease reuse across instances.
  for (int round = 0; round < 8; ++round) {
    EfrbTreeSet<int> t;
    run_threads(4, [&](std::size_t tid) {
      for (int i = 0; i < 500; ++i) {
        const int k = static_cast<int>(tid) * 500 + i;
        ASSERT_TRUE(t.insert(k));
      }
    });
    EXPECT_EQ(t.size(), 2000u);
  }
}

}  // namespace
}  // namespace efrb
