// Help-chain attribution (obs/causal.hpp) end to end: the owner-stamp
// packing, the CausalRegistry matrix/edge bookkeeping, and the PR's
// acceptance scenario — a deliberately stalled deleter whose operation is
// completed by a helper must produce (a) a nonzero helped_by[helper][owner]
// matrix cell, (b) a Chrome-trace flow arrow from the helper's span to the
// stalled op's thread, and (c) a StallReport naming the stalled thread, key,
// and CAS step. The scenario runs under the fault-injection scheduler
// (src/inject/) for a deterministic freeze, with causal tracing layered on
// top of InjectTraits.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "inject/fault_plan.hpp"
#include "inject/fault_scheduler.hpp"
#include "obs/causal.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "reclaim/epoch.hpp"

namespace efrb {
namespace {

using inject::FaultAction;
using inject::FaultKind;
using inject::FaultPlan;
using inject::FaultScheduler;

// ------------------------------------------------------------ owner stamp

TEST(OwnerStampTest, PackRoundTripsTidAndSeq) {
  const std::uint64_t w = pack_owner(3, 41);
  EXPECT_EQ(owner_tid(w), 3u);
  EXPECT_EQ(owner_seq(w), 41u);
  // Full-width fields survive: tid uses 16 bits, seq the low 48.
  const std::uint64_t big = pack_owner(0xFFFF, (std::uint64_t{1} << 48) - 1);
  EXPECT_EQ(owner_tid(big), 0xFFFFu);
  EXPECT_EQ(owner_seq(big), (std::uint64_t{1} << 48) - 1);
  EXPECT_NE(pack_owner(0, 0), kNoOwner);
}

// ------------------------------------------------------- registry basics

TEST(CausalRegistryTest, RecordsMatrixCellAndTotals) {
  obs::CausalRegistry reg(8);
  reg.record_help(2, pack_owner(5, 100));
  reg.record_help(2, pack_owner(5, 101));
  reg.record_help(5, pack_owner(2, 7));
  EXPECT_EQ(reg.helped_by(2, 5), 2u);
  EXPECT_EQ(reg.helped_by(5, 2), 1u);
  EXPECT_EQ(reg.helped_by(2, 2), 0u);
  EXPECT_EQ(reg.helps_given(2), 2u);
  EXPECT_EQ(reg.helps_received(5), 2u);
  EXPECT_EQ(reg.helps_given(5), 1u);
  EXPECT_EQ(reg.helps_received(2), 1u);
  EXPECT_EQ(reg.total_helps(), 3u);
  EXPECT_EQ(reg.dropped_unattributed(), 0u);
}

TEST(CausalRegistryTest, DropsUnattributedAndOutOfRange) {
  obs::CausalRegistry reg(4);
  reg.record_help(1, kNoOwner);               // no stamp
  reg.record_help(kNoTid, pack_owner(0, 1));  // tree-level helper
  reg.record_help(99, pack_owner(0, 1));      // helper out of range
  reg.record_help(1, pack_owner(99, 1));      // owner out of range
  EXPECT_EQ(reg.total_helps(), 0u);
  EXPECT_EQ(reg.dropped_unattributed(), 4u);
  // Out-of-range queries answer zero rather than faulting.
  EXPECT_EQ(reg.helped_by(99, 0), 0u);
  EXPECT_EQ(reg.helps_given(99), 0u);
  EXPECT_EQ(reg.helps_received(99), 0u);
}

TEST(CausalRegistryTest, EdgeRingRetainsNewestEdges) {
  obs::CausalRegistry reg(4, nullptr, /*edge_ring_capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    reg.record_help(1, pack_owner(0, i));
  }
  const std::vector<obs::HelpEdge> edges = reg.edges(1);
  ASSERT_EQ(edges.size(), 4u);  // capacity bounds retention
  EXPECT_EQ(owner_seq(edges.back().owner), 9u);   // newest kept
  EXPECT_EQ(owner_seq(edges.front().owner), 6u);  // oldest retained
  EXPECT_TRUE(reg.edges(3).empty());
  EXPECT_TRUE(reg.edges(99).empty());
}

TEST(CausalRegistryTest, JsonCellElidesIdleRowsAndCountsActivity) {
  obs::CausalRegistry reg(16);
  reg.record_help(1, pack_owner(0, 5));
  obs::JsonWriter w;
  reg.append_json(w);
  const std::string json = w.take();
  EXPECT_NE(json.find("\"total_helps\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"helped_by\":{\"1\":{\"0\":1}}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"helps_received\":{\"0\":1}"), std::string::npos)
      << json;
  // 14 idle tids contribute nothing.
  EXPECT_EQ(json.find("\"2\""), std::string::npos) << json;
}

TEST(CausalRegistryTest, FlowEventsComeInMatchedStartFinishPairs) {
  obs::TraceRegistry trace(4);
  obs::CausalRegistry reg(4, &trace);
  reg.record_help(2, pack_owner(1, 9));
  const std::string json = reg.chrome_trace_with_flows(trace);
  // One edge: an "s" on the helper's timeline and an "f" (bp:"e") on the
  // owner's, sharing an id.
  EXPECT_NE(json.find("\"name\":\"help-flow\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos) << json;
}

// ------------------------------------------------- acceptance: stalled op
//
// Causal tracing stacked on the fault-injection traits: the scheduler keeps
// its stall gates and CAS vetoes, help events additionally flow into the
// installed CausalRegistry (and TraceRegistry) with the owner stamp.

struct CausalInjectTraits : inject::InjectTraits {
  static constexpr bool kCausalTrace = true;

  using inject::InjectTraits::at;
  static void at(HookPoint p, unsigned tid, std::uint64_t key,
                 std::uint64_t owner) {
    obs::CausalTraits::at(p, tid, key, owner);
    inject::InjectTraits::at(p, tid);  // stall gates / hit accounting
  }
};

using CausalTree =
    EfrbTreeSet<int, std::less<int>, EpochReclaimer, CausalInjectTraits>;

FaultAction stall_at(unsigned tid, HookPoint p, unsigned occurrence = 1) {
  FaultAction a;
  a.kind = FaultKind::kStall;
  a.tid = tid;
  a.point = static_cast<int>(p);
  a.occurrence = occurrence;
  return a;
}

TEST(CausalAcceptanceTest, StalledDeleterIsAttributedFlowedAndReported) {
  obs::TraceRegistry trace;
  obs::CausalRegistry causal(trace.max_tids(), &trace);
  obs::CausalTraits::install(&causal, &trace);

  CausalTree t;
  for (int k : {10, 30, 50, 70}) ASSERT_TRUE(t.insert(k));

  FaultPlan plan;
  plan.actions.push_back(stall_at(0, HookPoint::kAfterDFlag));
  FaultScheduler sched(plan);

  // Handle tids are assigned in creation order; create the victim's first
  // so the owner stamp carries tid 0 and the helper tid 1.
  bool victim_ret = false;
  unsigned victim_tid = kNoTid;
  unsigned helper_tid = kNoTid;
  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    victim_tid = h.tid();
    victim_ret = h.erase(30);
  });
  ASSERT_TRUE(sched.wait_until_stalled(0));

  // (c) While the deleter is frozen after its successful dflag, the
  // watchdog must name its thread, key, and last CAS step.
  obs::LivenessWatchdog watchdog(t.progress_table(),
                                 obs::WatchdogBudget{.retries = 1'000'000,
                                                     .wall_ns = 1});
  const obs::StallReport rep = watchdog.poll_once();
  ASSERT_EQ(rep.stalled.size(), 1u);
  EXPECT_EQ(rep.stalled[0].tid, 0u);
  EXPECT_EQ(rep.stalled[0].op_key, 30u);
  EXPECT_EQ(static_cast<CasStep>(rep.stalled[0].last_step), CasStep::kDFlag);
  EXPECT_GE(rep.stall_events_total, 1u);

  // A second deleter of the same key finds the flagged grandparent and
  // helps the stalled operation to completion.
  {
    FaultScheduler::ThreadScope scope(sched, 1);
    auto h = t.handle();
    helper_tid = h.tid();
    EXPECT_FALSE(h.erase(30));
  }
  EXPECT_FALSE(t.contains(30));

  sched.release(0);
  victim.join();
  EXPECT_TRUE(victim_ret);
  EXPECT_TRUE(t.validate().ok);

  ASSERT_NE(victim_tid, kNoTid);
  ASSERT_NE(helper_tid, kNoTid);
  ASSERT_NE(victim_tid, helper_tid);

  // (a) The help matrix charges the helper with completing the victim's op.
  EXPECT_GE(causal.helped_by(helper_tid, victim_tid), 1u)
      << "helper " << helper_tid << " victim " << victim_tid;
  EXPECT_GE(causal.helps_given(helper_tid), 1u);
  EXPECT_GE(causal.helps_received(victim_tid), 1u);

  // (b) The merged Chrome trace carries a flow arrow: "s" on the helper's
  // timeline, "f" bound into the victim's.
  const std::string json = causal.chrome_trace_with_flows(trace);
  const std::string s_event = "\"ph\":\"s\",\"id\":1,\"ts\":";
  EXPECT_NE(json.find(s_event), std::string::npos) << json.substr(0, 400);
  const std::size_t s_pos = json.find(s_event);
  ASSERT_NE(s_pos, std::string::npos);
  const std::string s_obj = json.substr(s_pos, json.find('}', s_pos) - s_pos);
  EXPECT_NE(s_obj.find("\"tid\":" + std::to_string(helper_tid)),
            std::string::npos)
      << s_obj;
  const std::size_t f_pos = json.find("\"ph\":\"f\"");
  ASSERT_NE(f_pos, std::string::npos);
  const std::string f_obj = json.substr(f_pos, json.find('}', f_pos) - f_pos);
  EXPECT_NE(f_obj.find("\"tid\":" + std::to_string(victim_tid)),
            std::string::npos)
      << f_obj;

  // The kHelpOwner companion slot reached the helper's trace ring too (the
  // postmortem decoder's help-graph source).
  bool saw_owner_slot = false;
  for (const obs::TraceEvent& e : trace.snapshot(helper_tid)) {
    if (e.kind == obs::TraceEventKind::kHelpOwner) {
      saw_owner_slot = true;
      EXPECT_EQ(e.code, victim_tid);
    }
  }
  EXPECT_TRUE(saw_owner_slot);

  obs::CausalTraits::reset();
}

// With causal tracing active, helpers of a *tree-level* operation (no
// handle, no progress slot) see kNoOwner and the event lands in the dropped
// counter, never a bogus matrix cell.

TEST(CausalAcceptanceTest, TreeLevelOpsStayUnattributed) {
  obs::CausalRegistry causal;
  obs::CausalTraits::install(&causal);

  CausalTree t;
  ASSERT_TRUE(t.insert(10));
  ASSERT_TRUE(t.insert(30));

  FaultPlan plan;
  plan.actions.push_back(stall_at(0, HookPoint::kAfterDFlag));
  FaultScheduler sched(plan);

  bool victim_ret = false;
  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    victim_ret = t.erase(30);  // tree-level: no handle, kNoOwner stamp
  });
  ASSERT_TRUE(sched.wait_until_stalled(0));
  {
    FaultScheduler::ThreadScope scope(sched, 1);
    auto h = t.handle();
    EXPECT_FALSE(h.erase(30));
  }
  sched.release(0);
  victim.join();
  EXPECT_TRUE(victim_ret);

  EXPECT_EQ(causal.total_helps(), 0u);
  EXPECT_GE(causal.dropped_unattributed(), 1u);

  obs::CausalTraits::reset();
}

}  // namespace
}  // namespace efrb
