// Tests for the packed update word (state + Info pointer in one CAS word) —
// the Fig. 5/7 memory layout: "Fields separated by dotted lines are stored in
// a single word."
#include <gtest/gtest.h>

#include <cstdint>

#include "core/tagged_update.hpp"

namespace efrb {
namespace {

struct FakeInfo : Info {
  int payload = 0;
};

TEST(UpdateTest, DefaultIsCleanNull) {
  Update u;
  EXPECT_EQ(u.state(), UpdateState::kClean);
  EXPECT_EQ(u.info(), nullptr);
  EXPECT_EQ(u.bits(), 0u);
}

TEST(UpdateTest, PackUnpackRoundTripsAllStates) {
  FakeInfo info;
  for (UpdateState s : {UpdateState::kClean, UpdateState::kDFlag,
                        UpdateState::kIFlag, UpdateState::kMark}) {
    const Update u = Update::make(s, &info);
    EXPECT_EQ(u.state(), s);
    EXPECT_EQ(u.info(), &info);
  }
}

TEST(UpdateTest, StateLivesInLowTwoBits) {
  FakeInfo info;
  const Update u = Update::make(UpdateState::kMark, &info);
  EXPECT_EQ(u.bits() & 0x3, static_cast<std::uintptr_t>(UpdateState::kMark));
  EXPECT_EQ(u.bits() & ~std::uintptr_t{0x3},
            reinterpret_cast<std::uintptr_t>(&info));
}

TEST(UpdateTest, EqualityIsStateAndPointer) {
  FakeInfo a, b;
  EXPECT_EQ(Update::make(UpdateState::kIFlag, &a),
            Update::make(UpdateState::kIFlag, &a));
  EXPECT_NE(Update::make(UpdateState::kIFlag, &a),
            Update::make(UpdateState::kDFlag, &a));
  EXPECT_NE(Update::make(UpdateState::kIFlag, &a),
            Update::make(UpdateState::kIFlag, &b));
}

TEST(UpdateTest, InfoAlignmentLeavesTagBitsFree) {
  // The packing requires 4-byte-aligned Info records; the virtual table
  // pointer forces at least pointer alignment.
  static_assert(alignof(FakeInfo) >= 4);
  auto* p = new FakeInfo;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) & 0x3, 0u);
  delete p;
}

TEST(AtomicUpdateTest, IsSingleWord) {
  // The paper's premise: state+info fit one CAS-able machine word (§3).
  static_assert(sizeof(AtomicUpdate) == sizeof(void*));
  AtomicUpdate au;
  EXPECT_TRUE(std::atomic<std::uintptr_t>{}.is_lock_free());
}

TEST(AtomicUpdateTest, InitiallyCleanNull) {
  AtomicUpdate au;
  EXPECT_EQ(au.load(), Update{});
}

TEST(AtomicUpdateTest, SuccessfulCas) {
  AtomicUpdate au;
  FakeInfo info;
  Update expected;  // {Clean, null}
  EXPECT_TRUE(au.compare_exchange(expected,
                                  Update::make(UpdateState::kIFlag, &info)));
  EXPECT_EQ(au.load().state(), UpdateState::kIFlag);
  EXPECT_EQ(au.load().info(), &info);
}

TEST(AtomicUpdateTest, FailedCasReturnsWitnessedValue) {
  AtomicUpdate au;
  FakeInfo real, stale;
  Update e0;
  ASSERT_TRUE(au.compare_exchange(e0, Update::make(UpdateState::kDFlag, &real)));

  Update expected = Update::make(UpdateState::kClean, &stale);
  EXPECT_FALSE(au.compare_exchange(expected,
                                   Update::make(UpdateState::kMark, &stale)));
  // The refreshed expected is exactly what Help() needs (paper line 61/85).
  EXPECT_EQ(expected, Update::make(UpdateState::kDFlag, &real));
}

TEST(AtomicUpdateTest, CasDistinguishesSameInfoDifferentState) {
  // iunflag CAS semantics: (IFlag, op) -> (Clean, op). A stale (Clean, op)
  // expectation must fail even though the pointer matches.
  AtomicUpdate au;
  FakeInfo op;
  Update e;
  ASSERT_TRUE(au.compare_exchange(e, Update::make(UpdateState::kIFlag, &op)));

  Update wrong = Update::make(UpdateState::kClean, &op);
  EXPECT_FALSE(au.compare_exchange(wrong, Update::make(UpdateState::kMark, &op)));

  Update right = Update::make(UpdateState::kIFlag, &op);
  EXPECT_TRUE(au.compare_exchange(right, Update::make(UpdateState::kClean, &op)));
  EXPECT_EQ(au.load(), Update::make(UpdateState::kClean, &op));
}

}  // namespace
}  // namespace efrb
