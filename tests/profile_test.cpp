// Tests for the profiling layer (PR 10): the perf_event_open wrapper's
// graceful degradation (EFRB_PERFCTR_DISABLE forces the fallback path
// deterministically, so these pass on hosts with and without a PMU), the
// PhaseProfiler state machine driven by synthetic hook streams (attribution
// tiles the op window, helping nests, scopes saturate, out-of-window events
// are counted but never attributed), the runner integration on a
// ProfileTraits-instrumented tree, and the metrics-v4 `profile` cell's
// absent-not-zero contract validated by round-tripping through the JSON
// parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>

#include "core/efrb_tree.hpp"
#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/perfctr.hpp"
#include "obs/profile.hpp"
#include "obs/prom.hpp"
#include "reclaim/epoch.hpp"
#include "workload/runner.hpp"

namespace efrb {
namespace {

using obs::JsonValue;
using obs::PerfAvailability;
using obs::PerfCounterGroup;
using obs::PerfCounts;
using obs::PhaseProfiler;
using obs::ProfileScope;
using obs::ProfileSnapshot;
using obs::ProfileTraits;

/// Scoped environment override; restores (or re-unsets) on destruction so a
/// failing test cannot leak the kill switch into later cases.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_ = false;
};

/// Burn a few thousand cycle_stamp ticks so zero-length segments cannot make
/// an assertion vacuous on a coarse clock.
void spin_a_little() {
  const std::uint64_t start = obs::cycle_stamp();
  volatile std::uint64_t sink = 0;
  while (obs::cycle_stamp() - start < 5000) sink = sink + 1;
}

// ------------------------------------------------------------ phase basics

TEST(PhaseTest, EveryPhaseHasAStableName) {
  EXPECT_STREQ(to_string(Phase::kDescent), "descent");
  EXPECT_STREQ(to_string(Phase::kCasProtocol), "cas_protocol");
  EXPECT_STREQ(to_string(Phase::kHelping), "helping");
  EXPECT_STREQ(to_string(Phase::kRebalanceCleanup), "rebalance_cleanup");
  EXPECT_STREQ(to_string(Phase::kReclamation), "reclamation");
  EXPECT_STREQ(to_string(Phase::kPoolAlloc), "pool_alloc");
  static_assert(kNumPhases == 6);
}

TEST(PerfctrTest, CycleStampIsMonotone) {
  std::uint64_t prev = obs::cycle_stamp();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = obs::cycle_stamp();
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_FALSE(std::string(obs::cycle_source()).empty());
}

// --------------------------------------------------- availability fallback

TEST(PerfctrTest, KillSwitchForcesUnavailable) {
  EnvGuard guard("EFRB_PERFCTR_DISABLE", "1");
  EXPECT_TRUE(obs::perfctr_disabled());
  const PerfAvailability avail = obs::probe_perf_availability();
  EXPECT_FALSE(avail.hw);
  EXPECT_FALSE(avail.sw);
  EXPECT_NE(avail.reason.find("EFRB_PERFCTR_DISABLE"), std::string::npos);

  PerfCounterGroup group;
  EXPECT_FALSE(group.open());
  EXPECT_FALSE(group.hw_available());
  EXPECT_FALSE(group.sw_available());
  const PerfCounts counts = group.read();
  EXPECT_FALSE(counts.hw_ok);
  EXPECT_FALSE(counts.sw_ok);
  EXPECT_FALSE(counts.cycles_ok);
  EXPECT_FALSE(counts.task_clock_ok);
}

TEST(PerfctrTest, KillSwitchIsCheckedFreshEachCall) {
  {
    EnvGuard guard("EFRB_PERFCTR_DISABLE", "1");
    EXPECT_TRUE(obs::perfctr_disabled());
  }
  // Guard restored the previous environment: the probe must not have cached
  // the disabled verdict.
  if (std::getenv("EFRB_PERFCTR_DISABLE") == nullptr) {
    EXPECT_FALSE(obs::perfctr_disabled());
  }
}

TEST(PerfctrTest, GroupDegradesPerCounterNotWholesale) {
  // Host-tolerant: on a PMU-less VM hw stays closed while sw task-clock
  // works; on bare metal both work. Either way the per-field _ok flags must
  // agree with the headline availability bits and an unavailable group must
  // explain itself.
  PerfCounterGroup group;
  const bool opened = group.open();
  group.enable();
  spin_a_little();
  group.disable();
  const PerfCounts counts = group.read();
  EXPECT_EQ(counts.hw_ok, counts.cycles_ok);
  EXPECT_EQ(counts.sw_ok, counts.task_clock_ok);
  EXPECT_EQ(opened, group.hw_available() || group.sw_available());
  if (!group.hw_available()) {
    EXPECT_FALSE(group.unavailable_reason().empty());
    EXPECT_FALSE(counts.cycles_ok);
    EXPECT_EQ(counts.cycles, 0u);  // absent counters stay zero with ok=false
  } else {
    EXPECT_GT(counts.cycles, 0u);
  }
  if (group.sw_available()) {
    EXPECT_TRUE(counts.task_clock_ok);
    EXPECT_GT(counts.task_clock_ns, 0u);
  }
}

TEST(PerfctrTest, AccumulateSumsAndUnionsAvailability) {
  PerfCounts a;
  a.cycles = 100;
  a.cycles_ok = true;
  a.hw_ok = true;
  PerfCounts b;
  b.task_clock_ns = 50;
  b.task_clock_ok = true;
  b.sw_ok = true;
  PerfCounts sum;
  sum.accumulate(a);
  sum.accumulate(b);
  EXPECT_TRUE(sum.hw_ok);
  EXPECT_TRUE(sum.sw_ok);
  EXPECT_EQ(sum.cycles, 100u);
  EXPECT_EQ(sum.task_clock_ns, 50u);
  EXPECT_TRUE(sum.cycles_ok);
  EXPECT_TRUE(sum.task_clock_ok);
  EXPECT_FALSE(sum.instructions_ok);
}

// ------------------------------------------------- profiler state machine

TEST(PhaseProfilerTest, SegmentsTileTheOpWindow) {
  PhaseProfiler prof;
  prof.op_begin(0);
  spin_a_little();                       // descent
  prof.at(HookPoint::kAfterSearch, 0);   // -> cas_protocol
  spin_a_little();
  {
    ProfileScope alloc(prof, Phase::kPoolAlloc, 0);
    spin_a_little();
  }
  spin_a_little();
  prof.op_end(0);

  const ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.ops, 1u);
  EXPECT_GT(s.cycles, 0u);
  // The core invariant: attributed segments tile the window, never exceed it.
  EXPECT_LE(s.phase_cycles_sum(), s.cycles);
  EXPECT_GT(s.phases[static_cast<std::size_t>(Phase::kDescent)].cycles, 0u);
  EXPECT_GT(s.phases[static_cast<std::size_t>(Phase::kCasProtocol)].cycles,
            0u);
  EXPECT_GT(s.phases[static_cast<std::size_t>(Phase::kPoolAlloc)].cycles, 0u);
  EXPECT_EQ(s.phases[static_cast<std::size_t>(Phase::kPoolAlloc)].enters, 1u);
  EXPECT_EQ(s.events_outside_op, 0u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_GT(s.cycles_per_op(), 0.0);
}

TEST(PhaseProfilerTest, NestedHelpingStaysHelpingUntilOutermostReturns) {
  PhaseProfiler prof;
  prof.op_begin(3);
  prof.at(HookPoint::kAfterSearch, 3);  // cas_protocol
  prof.at(HookPoint::kBeforeHelp, 3);   // helping (depth 1)
  spin_a_little();
  prof.at(HookPoint::kBeforeHelp, 3);   // helping (depth 2)
  spin_a_little();
  prof.at(HookPoint::kAfterHelp, 3);    // still helping (depth 1)
  spin_a_little();
  prof.at(HookPoint::kAfterHelp, 3);    // resume cas_protocol
  spin_a_little();
  prof.op_end(3);

  const ProfileSnapshot s = prof.snapshot();
  const auto& helping = s.phases[static_cast<std::size_t>(Phase::kHelping)];
  EXPECT_EQ(helping.enters, 2u);
  EXPECT_GT(helping.cycles, 0u);
  // Time after the outermost kAfterHelp went back to the op's own protocol.
  EXPECT_GT(s.phases[static_cast<std::size_t>(Phase::kCasProtocol)].cycles,
            0u);
  EXPECT_LE(s.phase_cycles_sum(), s.cycles);
}

TEST(PhaseProfilerTest, RetryResetsToDescent) {
  PhaseProfiler prof;
  prof.op_begin(0);
  prof.at(HookPoint::kAfterSearch, 0);
  prof.at(HookPoint::kInsertRetry, 0);  // attempt failed -> re-descent
  spin_a_little();
  prof.at(HookPoint::kAfterSearch, 0);
  prof.op_end(0);
  const ProfileSnapshot s = prof.snapshot();
  // Two descent enters: op_begin and the retry reset.
  EXPECT_EQ(s.phases[static_cast<std::size_t>(Phase::kDescent)].enters, 2u);
  EXPECT_EQ(s.phases[static_cast<std::size_t>(Phase::kCasProtocol)].enters,
            2u);
}

TEST(PhaseProfilerTest, EventsOutsideAWindowCountButNeverAttribute) {
  PhaseProfiler prof;
  prof.at(HookPoint::kAfterSearch, 0);       // no open window
  prof.phase(true, Phase::kReclamation, 0);  // ditto
  prof.op_end(0);                            // unmatched end: no-op
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.ops, 0u);
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.phase_cycles_sum(), 0u);
  EXPECT_EQ(s.events_outside_op, 2u);
}

TEST(PhaseProfilerTest, OutOfRangeTidIsDroppedNotCorrupting) {
  PhaseProfiler prof;
  prof.op_begin(PhaseProfiler::kMaxTids);  // out of range
  prof.at(HookPoint::kAfterSearch, PhaseProfiler::kMaxTids + 7);
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.ops, 0u);
  EXPECT_EQ(s.dropped, 2u);
}

TEST(PhaseProfilerTest, ScopeStackSaturatesAndUnmatchedExitsAreNoops) {
  PhaseProfiler prof;
  prof.op_begin(0);
  // Push past the stack bound; the deep enters saturate (no transition) and
  // the matching exits unwind without corrupting the shallow frames.
  for (int i = 0; i < PhaseProfiler::kMaxScopeDepth + 4; ++i) {
    prof.phase(true, Phase::kReclamation, 0);
  }
  for (int i = 0; i < PhaseProfiler::kMaxScopeDepth + 8; ++i) {
    prof.phase(false, Phase::kReclamation, 0);
  }
  spin_a_little();
  prof.op_end(0);
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.ops, 1u);
  EXPECT_LE(s.phase_cycles_sum(), s.cycles);
  // After the unwind the tail of the op is back in descent (the op_begin
  // phase), not stuck in reclamation.
  EXPECT_GT(s.phases[static_cast<std::size_t>(Phase::kDescent)].cycles, 0u);
}

TEST(PhaseProfilerTest, ResetZeroesEverything) {
  PhaseProfiler prof;
  prof.op_begin(0);
  prof.op_end(0);
  prof.at(HookPoint::kAfterSearch, PhaseProfiler::kMaxTids);
  prof.reset();
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.ops, 0u);
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.events_outside_op, 0u);
  EXPECT_EQ(s.phase_cycles_sum(), 0u);
}

TEST(PhaseProfilerTest, DerivedRatesAreUndefinedWithoutTheirCounters) {
  PhaseProfiler prof;
  prof.op_begin(0);
  prof.op_end(0);
  const ProfileSnapshot s = prof.snapshot();
  double out = 0;
  if (!s.available) {
    EXPECT_FALSE(s.hw_cycles_per_op(&out));
    EXPECT_FALSE(s.ipc(&out));
    EXPECT_FALSE(s.cache_miss_rate(&out));
    EXPECT_FALSE(s.branch_miss_per_kinstr(&out));
    EXPECT_FALSE(s.multiplex_scale(&out));
    EXPECT_FALSE(s.phase_cycles_est(0, &out));
  }
}

TEST(PhaseProfilerTest, AddHwFoldsThreadReads) {
  PhaseProfiler prof;
  PerfCounts counts;
  counts.hw_ok = true;
  counts.cycles_ok = true;
  counts.cycles = 1000;
  counts.instructions_ok = true;
  counts.instructions = 2000;
  prof.add_hw(counts, "");
  prof.add_hw(counts, "");
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_TRUE(s.available);
  EXPECT_EQ(s.hw_threads, 2u);
  EXPECT_EQ(s.hw.cycles, 2000u);
  double ipc = 0;
  ASSERT_TRUE(s.ipc(&ipc));
  EXPECT_DOUBLE_EQ(ipc, 2.0);  // 4000 instructions over 2000 cycles
  EXPECT_TRUE(s.unavailable_reason.empty());
}

// ------------------------------------------------------ runner integration

using ProfiledTree =
    EfrbTreeSet<std::uint64_t, std::less<std::uint64_t>, EpochReclaimer,
                ProfileTraits>;

TEST(ProfileIntegrationTest, WorkloadAttributionCoversEveryOperation) {
  ProfiledTree tree;
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.key_range = 256;
  cfg.mix = kUpdateHeavy;
  cfg.duration = std::chrono::milliseconds(50);
  prefill(tree, cfg.key_range, cfg.prefill_fraction, cfg.seed);

  PhaseProfiler profiler;
  ProfileTraits::install(&profiler);
  const WorkloadResult res =
      run_workload(tree, cfg, nullptr, nullptr, nullptr, nullptr, &profiler);
  ProfileTraits::reset();

  const ProfileSnapshot s = profiler.snapshot();
  EXPECT_GT(res.total_ops(), 0u);
  EXPECT_EQ(s.ops, res.total_ops());
  EXPECT_GT(s.cycles, 0u);
  EXPECT_LE(s.phase_cycles_sum(), s.cycles);
  // An update-heavy run descends and runs the CAS protocol on every op, and
  // allocates/retires through the phase-scoped seams.
  EXPECT_GT(s.phases[static_cast<std::size_t>(Phase::kDescent)].cycles, 0u);
  EXPECT_GT(s.phases[static_cast<std::size_t>(Phase::kCasProtocol)].cycles,
            0u);
  EXPECT_GT(s.phases[static_cast<std::size_t>(Phase::kPoolAlloc)].enters, 0u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(ProfileIntegrationTest, FallbackModeStillAttributesAndStaysCorrect) {
  // The differential check under the kill switch: instrumented tree semantics
  // against std::set, with the profiler attached and hardware denied.
  EnvGuard guard("EFRB_PERFCTR_DISABLE", "1");
  ProfiledTree tree;
  PhaseProfiler profiler;
  ProfileTraits::install(&profiler);
  std::set<std::uint64_t> reference;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t key = x % 512;
    profiler.op_begin(0);
    switch (x % 3) {
      case 0:
        EXPECT_EQ(tree.insert(key), reference.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(tree.erase(key), reference.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(tree.contains(key), reference.count(key) > 0);
        break;
    }
    profiler.op_end(0);
  }
  ProfileTraits::reset();

  const ProfileSnapshot s = profiler.snapshot();
  EXPECT_EQ(s.ops, 4000u);
  EXPECT_FALSE(s.available);  // kill switch wins whatever the host has
  EXPECT_LE(s.phase_cycles_sum(), s.cycles);
  EXPECT_FALSE(s.unavailable_reason.empty());
}

// ----------------------------------------------- metrics v4 profile cell

TEST(ProfileMetricsTest, FallbackCellOmitsHwAndDerivedSections) {
  EnvGuard guard("EFRB_PERFCTR_DISABLE", "1");
  ProfiledTree tree;
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.key_range = 128;
  cfg.duration = std::chrono::milliseconds(30);
  prefill(tree, cfg.key_range, cfg.prefill_fraction, cfg.seed);
  PhaseProfiler profiler;
  ProfileTraits::install(&profiler);
  const WorkloadResult res =
      run_workload(tree, cfg, nullptr, nullptr, nullptr, nullptr, &profiler);
  ProfileTraits::reset();
  const ProfileSnapshot snap = profiler.snapshot();

  obs::MetricsDocument doc("profile_test");
  doc.add_cell("cell", cfg, res, nullptr, nullptr, nullptr, nullptr, nullptr,
               nullptr, &snap);
  const std::string json = doc.finish();

  std::string err;
  std::optional<JsonValue> parsed = obs::parse_json(json, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->number_at("schema_version", 0), 4.0);
  const JsonValue* cells = parsed->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->array.size(), 1u);
  const JsonValue& cell = cells->array[0];

  const JsonValue* profile = cell.find("profile");
  ASSERT_NE(profile, nullptr);
  const JsonValue* available = profile->find("available");
  ASSERT_NE(available, nullptr);
  EXPECT_FALSE(available->boolean);
  // The absent-not-zero contract: no hw section, no derived rates, and an
  // explanation for why.
  EXPECT_EQ(profile->find("hw"), nullptr);
  EXPECT_EQ(profile->find("derived"), nullptr);
  EXPECT_FALSE(std::string(profile->string_at("unavailable_reason")).empty());
  // The tick-based attribution is still fully populated.
  EXPECT_GT(profile->number_at("ops", 0), 0.0);
  EXPECT_GT(profile->number_at("cycles", 0), 0.0);
  EXPECT_LE(profile->number_at("phase_cycles_sum", 0),
            profile->number_at("cycles", 0));
  const JsonValue* phases = profile->find("phases");
  ASSERT_NE(phases, nullptr);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const JsonValue* ph = phases->find(to_string(static_cast<Phase>(i)));
    ASSERT_NE(ph, nullptr) << to_string(static_cast<Phase>(i));
    EXPECT_NE(ph->find("cycles"), nullptr);
    EXPECT_NE(ph->find("enters"), nullptr);
    EXPECT_NE(ph->find("share"), nullptr);
    // hw_cycles_est is hw-derived: absent in fallback mode.
    EXPECT_EQ(ph->find("hw_cycles_est"), nullptr);
  }
  EXPECT_FALSE(std::string(profile->string_at("source")).empty());
}

TEST(ProfileMetricsTest, HwSectionsAppearWhenCountersWereCollected) {
  // Synthesize an available snapshot (no PMU dependence) and check the
  // conditional sections materialize with only the counters that reported.
  PhaseProfiler profiler;
  profiler.op_begin(0);
  spin_a_little();
  profiler.op_end(0);
  PerfCounts counts;
  counts.hw_ok = true;
  counts.cycles_ok = true;
  counts.cycles = 123456;
  counts.instructions_ok = true;
  counts.instructions = 246912;
  counts.time_enabled_ns = 1000;
  counts.time_running_ns = 1000;
  profiler.add_hw(counts, "");
  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_TRUE(snap.available);

  obs::MetricsDocument doc("profile_test");
  WorkloadConfig cfg;
  WorkloadResult res;
  res.finds = 1;
  res.seconds = 1;
  doc.add_cell("cell", cfg, res, nullptr, nullptr, nullptr, nullptr, nullptr,
               nullptr, &snap);
  std::string err;
  std::optional<JsonValue> parsed = obs::parse_json(doc.finish(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const JsonValue* profile =
      parsed->find("cells")->array[0].find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->find("unavailable_reason"), nullptr);
  const JsonValue* hw = profile->find("hw");
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(hw->number_at("cycles", 0), 123456.0);
  EXPECT_EQ(hw->number_at("instructions", 0), 246912.0);
  // Counters that never opened stay absent even inside an available cell.
  EXPECT_EQ(hw->find("cache_misses"), nullptr);
  EXPECT_EQ(hw->find("branch_misses"), nullptr);
  const JsonValue* derived = profile->find("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_DOUBLE_EQ(derived->number_at("ipc", 0), 2.0);
  EXPECT_EQ(derived->find("cache_miss_rate"), nullptr);
}

TEST(ProfileMetricsTest, PromSeriesKeepStableNeedlesInFallback) {
  EnvGuard guard("EFRB_PERFCTR_DISABLE", "1");
  PhaseProfiler profiler;
  profiler.op_begin(0);
  spin_a_little();
  profiler.op_end(0);
  const ProfileSnapshot snap = profiler.snapshot();

  obs::PromWriter prom;
  const obs::PromWriter::Labels labels = {{"structure", "efrb-tree"}};
  obs::append_profile_prom(prom, labels, snap);
  const std::string text = prom.render();
  // The always-present family set the check.sh linter greps for.
  EXPECT_NE(text.find("efrb_profile_available"), std::string::npos);
  EXPECT_NE(text.find("efrb_profile_ops_total"), std::string::npos);
  EXPECT_NE(text.find("efrb_profile_cycles_total"), std::string::npos);
  EXPECT_NE(text.find("efrb_profile_cycles_per_op"), std::string::npos);
  EXPECT_NE(text.find("phase=\"descent\""), std::string::npos);
  EXPECT_NE(text.find("phase=\"reclamation\""), std::string::npos);
  // Hardware families must be absent, not zero, in fallback mode.
  EXPECT_EQ(text.find("efrb_profile_hw_cycles_total"), std::string::npos);
  EXPECT_EQ(text.find("efrb_profile_ipc"), std::string::npos);
}

}  // namespace
}  // namespace efrb
