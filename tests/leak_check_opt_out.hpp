// Include from test binaries that exercise INTENTIONALLY leaking components —
// LeakyReclaimer (the paper's never-free memory model) and NaiveCasBst (whose
// erase detaches nodes without reclaiming, see its header) — so LeakSanitizer
// does not fail them. All other ASan checks (use-after-free, double free,
// overflow) stay fully enabled; binaries without this header keep leak
// detection on.
#pragma once

#if defined(__SANITIZE_ADDRESS__)
#define EFRB_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EFRB_ASAN_ENABLED 1
#endif
#endif

#ifdef EFRB_ASAN_ENABLED
extern "C" const char* __asan_default_options();
extern "C" const char* __asan_default_options() { return "detect_leaks=0"; }
#endif
