// The liveness watchdog's false-positive contract (obs/watchdog.hpp):
// an attached-but-idle handle is NEVER flagged no matter how tight the
// budget, a deliberately frozen thread IS flagged with its key and CAS step,
// completed ops racing the sampler are discarded by the seqlock re-read, and
// the ProgressTable heals stale odd sequence words on slot recycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "core/op_context.hpp"
#include "inject/fault_plan.hpp"
#include "inject/fault_scheduler.hpp"
#include "obs/causal.hpp"
#include "obs/watchdog.hpp"
#include "reclaim/epoch.hpp"

namespace efrb {
namespace {

using inject::FaultAction;
using inject::FaultKind;
using inject::FaultPlan;
using inject::FaultScheduler;

struct CausalInjectTraits : inject::InjectTraits {
  static constexpr bool kCausalTrace = true;

  using inject::InjectTraits::at;
  static void at(HookPoint p, unsigned tid, std::uint64_t key,
                 std::uint64_t owner) {
    obs::CausalTraits::at(p, tid, key, owner);
    inject::InjectTraits::at(p, tid);
  }
};

using WatchedTree =
    EfrbTreeSet<int, std::less<int>, EpochReclaimer, CausalInjectTraits>;

FaultAction stall_at(unsigned tid, HookPoint p, unsigned occurrence = 1) {
  FaultAction a;
  a.kind = FaultKind::kStall;
  a.tid = tid;
  a.point = static_cast<int>(p);
  a.occurrence = occurrence;
  return a;
}

// --------------------------------------------------- false-positive side

TEST(WatchdogTest, IdleAttachedHandleIsNeverFlagged) {
  WatchedTree t;
  auto h = t.handle();
  ASSERT_TRUE(h.insert(1));  // the handle has a history, but is idle now

  // Zero budgets: ANY in-flight op would be flagged instantly. An idle
  // handle (even op_seq) must still never appear.
  obs::LivenessWatchdog wd(t.progress_table(),
                           obs::WatchdogBudget{.retries = 0, .wall_ns = 0});
  for (int i = 0; i < 10; ++i) {
    const obs::StallReport rep = wd.poll_once();
    EXPECT_EQ(rep.sampled_in_flight, 0u);
    EXPECT_TRUE(rep.stalled.empty());
  }
  EXPECT_EQ(wd.stall_events_total(), 0u);
  EXPECT_EQ(wd.stalled_now(), 0u);
}

TEST(WatchdogTest, BackgroundSamplerStaysQuietUnderNormalTraffic) {
  WatchedTree t;
  // Generous budgets; uncontended single-thread ops finish far inside them.
  obs::LivenessWatchdog wd(t.progress_table(), obs::WatchdogBudget{},
                           std::chrono::milliseconds(1));
  std::atomic<std::uint64_t> callbacks{0};
  wd.set_on_stall([&](const obs::StallReport&) {
    callbacks.fetch_add(1, std::memory_order_relaxed);
  });
  wd.start();
  {
    auto h = t.handle();
    for (int i = 0; i < 20000; ++i) {
      h.insert(i & 255);
      h.erase(i & 255);
    }
  }
  wd.stop();
  const obs::StallReport rep = wd.report();
  EXPECT_GE(rep.polls, 1u);
  EXPECT_TRUE(rep.stalled.empty());
  EXPECT_EQ(wd.stall_events_total(), 0u);
  EXPECT_EQ(callbacks.load(), 0u);
}

// ------------------------------------------------------ true-positive side

TEST(WatchdogTest, FrozenThreadIsFlaggedWithKeyAndStep) {
  WatchedTree t;
  for (int k : {10, 30, 50}) ASSERT_TRUE(t.insert(k));

  FaultPlan plan;
  plan.actions.push_back(stall_at(0, HookPoint::kAfterDFlag));
  FaultScheduler sched(plan);

  bool victim_ret = false;
  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    victim_ret = h.erase(30);
  });
  ASSERT_TRUE(sched.wait_until_stalled(0));

  // The op is frozen right after its successful dflag CAS. Wall budget of
  // 1 ns has long expired; the retry budget stays out of the way so this
  // asserts the wall path specifically.
  obs::LivenessWatchdog wd(
      t.progress_table(),
      obs::WatchdogBudget{.retries = 1'000'000'000, .wall_ns = 1});
  std::atomic<std::uint64_t> callbacks{0};
  wd.set_on_stall([&](const obs::StallReport& r) {
    callbacks.fetch_add(1, std::memory_order_relaxed);
    EXPECT_FALSE(r.stalled.empty());
  });
  const obs::StallReport rep = wd.poll_once();
  ASSERT_EQ(rep.stalled.size(), 1u);
  const obs::StallEntry& e = rep.stalled[0];
  EXPECT_EQ(e.tid, 0u);
  EXPECT_EQ(e.op_key, 30u);
  EXPECT_EQ(static_cast<CasStep>(e.last_step), CasStep::kDFlag);
  EXPECT_EQ(e.op_seq & 1, 1u);  // window still open
  EXPECT_GT(e.age_ns, 0u);
  EXPECT_EQ(rep.sampled_in_flight, 1u);
  EXPECT_EQ(wd.stall_events_total(), 1u);
  EXPECT_EQ(callbacks.load(), 1u);

  // Consecutive polls keep flagging while frozen; the counter is monotone.
  wd.poll_once();
  EXPECT_EQ(wd.stall_events_total(), 2u);
  EXPECT_EQ(wd.stalled_now(), 1u);

  sched.release(0);
  victim.join();
  EXPECT_TRUE(victim_ret);

  // Released and completed: the very next poll is clean again.
  const obs::StallReport after = wd.poll_once();
  EXPECT_EQ(after.sampled_in_flight, 0u);
  EXPECT_TRUE(after.stalled.empty());
}

// ------------------------------------------------------ sampler mechanics

TEST(WatchdogTest, SeqlockDiscardsOpsThatCompleteMidSample) {
  // Simulate the race directly on a raw table: an odd window whose seq moves
  // between the sampler's two reads must be dropped, not reported.
  ProgressTable table;
  ProgressSlot* s = table.acquire(7);
  s->op_key.store(42, std::memory_order_relaxed);
  s->start_ns.store(0, std::memory_order_relaxed);  // infinitely old
  s->op_seq.store(1, std::memory_order_release);    // open window

  obs::LivenessWatchdog wd(table,
                           obs::WatchdogBudget{.retries = 0, .wall_ns = 0});
  // Open-and-unchanged: flagged.
  EXPECT_EQ(wd.poll_once().stalled.size(), 1u);

  // Close the window: the same slot is now idle and must vanish.
  s->op_seq.store(2, std::memory_order_release);
  const obs::StallReport rep = wd.poll_once();
  EXPECT_EQ(rep.sampled_in_flight, 0u);
  EXPECT_TRUE(rep.stalled.empty());
  ProgressTable::release(s);
}

TEST(ProgressTableTest, AcquireHealsStaleOddSequence) {
  ProgressTable table;
  ProgressSlot* s = table.acquire(3);
  EXPECT_EQ(s->tid.load(), 3u);

  // A handle destroyed mid-operation leaves an odd seq behind; release
  // closes it so samplers never see a ghost in-flight op on a free slot.
  s->op_seq.store(5, std::memory_order_relaxed);
  ProgressTable::release(s);
  EXPECT_EQ(s->op_seq.load() & 1, 0u);
  EXPECT_EQ(s->tid.load(), kNoTid);

  // Re-poison the freed slot directly, then recycle it: acquire must hand
  // out a closed (even) window.
  s->op_seq.store(9, std::memory_order_relaxed);
  ProgressSlot* r = table.acquire(4);
  EXPECT_EQ(r, s);  // first free slot recycles
  EXPECT_EQ(r->op_seq.load() & 1, 0u);
  EXPECT_EQ(r->tid.load(), 4u);
  ProgressTable::release(r);
}

TEST(ProgressTableTest, ExhaustionThrowsAndReleaseRecycles) {
  ProgressTable table;
  std::vector<ProgressSlot*> held;
  held.reserve(ProgressTable::kMaxHandles);
  for (std::size_t i = 0; i < ProgressTable::kMaxHandles; ++i) {
    held.push_back(table.acquire(static_cast<unsigned>(i)));
  }
  EXPECT_THROW(table.acquire(999), CapacityExhausted);
  ProgressTable::release(held.back());
  held.pop_back();
  ProgressSlot* again = table.acquire(999);
  EXPECT_NE(again, nullptr);
  ProgressTable::release(again);
  for (ProgressSlot* s : held) ProgressTable::release(s);
}

}  // namespace
}  // namespace efrb
