// Lifecycle and accounting tests for the per-thread operation Handle API:
// slot/shard acquisition and release across thread churn, moved-from handle
// semantics, and exact stats aggregation across cacheline-padded shards —
// under both the epoch reclaimer and the grace-round hazard reclaimer.
#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "leak_check_opt_out.hpp"  // LeakyReclaimer cells leak by design
#include "reclaim/hazard.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

// ---------------------------------------------------------------------------
// Basic operation coverage through a handle.
// ---------------------------------------------------------------------------

TEST(HandleTest, SetOperationsMatchTreeLevel) {
  EfrbTreeSet<int> t;
  auto h = t.handle();
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(h.insert(1));
  EXPECT_FALSE(h.insert(1));
  EXPECT_TRUE(h.contains(1));
  EXPECT_FALSE(h.contains(2));
  EXPECT_TRUE(h.erase(1));
  EXPECT_FALSE(h.erase(1));
  // Handle and tree-level calls interleave freely on the same tree.
  EXPECT_TRUE(t.insert(3));
  EXPECT_TRUE(h.contains(3));
  EXPECT_TRUE(h.erase(3));
  EXPECT_FALSE(t.contains(3));
}

TEST(HandleTest, MapOperationsThroughHandle) {
  EfrbTreeMap<int, int> m;
  auto h = m.handle();
  EXPECT_TRUE(h.insert(1, 10));
  EXPECT_EQ(h.get(1), std::optional<int>(10));
  EXPECT_FALSE(h.insert(1, 20));
  EXPECT_FALSE(h.insert_or_assign(1, 20));  // assigned, not newly inserted
  EXPECT_EQ(h.get(1), std::optional<int>(20));
  EXPECT_FALSE(h.replace(1, 99, 30));
  EXPECT_TRUE(h.replace(1, 20, 30));
  EXPECT_EQ(h.get_or_insert(1, 77), 30);
  EXPECT_EQ(h.get_or_insert(2, 77), 77);
  EXPECT_TRUE(h.erase(1));
  EXPECT_FALSE(h.get(1).has_value());
}

TEST(HandleTest, PerHandleRngStreamsAreDistinct) {
  EfrbTreeSet<int> t;
  auto h1 = t.handle();
  auto h2 = t.handle();
  // Splitmix-seeded per handle: two handles must not replay the same stream
  // (the failure mode of the thread-id-seeded skiplist level RNG).
  bool diverged = false;
  for (int i = 0; i < 8 && !diverged; ++i) {
    diverged = h1.rng().next() != h2.rng().next();
  }
  EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------------------
// Move semantics and detach.
// ---------------------------------------------------------------------------

TEST(HandleTest, MoveTransfersOwnership) {
  EfrbTreeSet<int> t;
  auto h = t.handle();
  ASSERT_TRUE(h.insert(1));

  auto h2 = std::move(h);
  EXPECT_FALSE(h.valid());  // NOLINT(bugprone-use-after-move): spec under test
  ASSERT_TRUE(h2.valid());
  EXPECT_TRUE(h2.contains(1));
  EXPECT_TRUE(h2.insert(2));

  EfrbTreeSet<int>::Handle h3;  // default-constructed: invalid move target
  EXPECT_FALSE(h3.valid());
  h3 = std::move(h2);
  EXPECT_FALSE(h2.valid());  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(h3.valid());
  EXPECT_TRUE(h3.contains(2));
}

TEST(HandleTest, DoubleDetachAndMovedFromDetachAreSafe) {
  EfrbTreeSet<int> t;
  auto h = t.handle();
  auto h2 = std::move(h);
  h.detach();   // NOLINT(bugprone-use-after-move): no-op on moved-from
  h.detach();   // idempotent
  h2.detach();
  h2.detach();  // idempotent on a detached handle too
  EXPECT_FALSE(h2.valid());
  // The tree is still fully usable afterwards.
  EXPECT_TRUE(t.insert(9));
  EXPECT_TRUE(t.contains(9));
}

TEST(HandleTest, MoveAssignReleasesTargetResources) {
  // Move-assigning over a live handle must release the target's slot/shard:
  // with max_threads == 2 a leak would exhaust the registry immediately.
  EfrbTreeSet<int, std::less<int>, EpochReclaimer> t(
      std::less<int>{}, EpochReclaimer(/*max_threads=*/2));
  for (int i = 0; i < 16; ++i) {
    auto a = t.handle();
    ASSERT_TRUE(a.insert(i));
    auto b = t.handle();  // both slots now in use
    b = std::move(a);     // must free b's original slot, not leak it
    ASSERT_TRUE(b.contains(i));
  }
}

// ---------------------------------------------------------------------------
// Thread churn: handles from short-lived threads must recycle reclaimer
// slots and stat shards under both reclaimers.
// ---------------------------------------------------------------------------

template <typename ReclaimerT>
class HandleChurnTest : public ::testing::Test {};

using Reclaimers = ::testing::Types<EpochReclaimer, HazardReclaimer>;
TYPED_TEST_SUITE(HandleChurnTest, Reclaimers);

TYPED_TEST(HandleChurnTest, ThreadChurnRecyclesSlots) {
  // 12 generations x 4 threads = 48 handles through a 4-slot registry; if
  // detach leaked slots the acquire assertion would fire in generation 2.
  using Tree = EfrbTreeSet<int, std::less<int>, TypeParam, StatsTraits>;
  Tree t(std::less<int>{}, TypeParam(/*max_threads=*/4, /*retire_batch=*/16));
  for (int gen = 0; gen < 12; ++gen) {
    run_threads(4, [&](std::size_t tid) {
      auto h = t.handle();
      const int base = (static_cast<int>(tid) + 1) * 1000;
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(h.insert(base + i));
        ASSERT_TRUE(h.contains(base + i));
        ASSERT_TRUE(h.erase(base + i));
      }
      h.flush();
    });
  }
  EXPECT_TRUE(t.validate().ok);
}

TYPED_TEST(HandleChurnTest, ReclaimerFreesThroughAttachments) {
  using Tree = EfrbTreeSet<int, std::less<int>, TypeParam>;
  Tree t(std::less<int>{}, TypeParam(/*max_threads=*/8, /*retire_batch=*/32));
  run_threads(4, [&](std::size_t tid) {
    auto h = t.handle();
    Xoshiro256 rng(tid + 21);
    for (int i = 0; i < 8000; ++i) {
      const int k = static_cast<int>(rng.next_below(64));
      if (i % 2 == 0) h.insert(k);
      else h.erase(k);
    }
    h.flush();  // drain this handle's retire backlog before detaching
  });
  EXPECT_GT(t.reclaimer().freed_count(), 100u)
      << "attachment-routed retires never reached the reclaimer";
}

TEST(HandleChurnSequentialTest, ShardPoolRecyclesBeyondCapacity) {
  // More sequential handle generations than kMaxHandles (128): every
  // acquire must be matched by a release or the shard pool asserts.
  using Tree = EfrbTreeSet<int, std::less<int>, EpochReclaimer, StatsTraits>;
  Tree t;
  std::uint64_t inserts = 0;
  for (int gen = 0; gen < 300; ++gen) {
    auto h = t.handle();
    ASSERT_TRUE(h.insert(gen));
    ++inserts;
  }
  // Released shards keep their counts (lifetime totals), so the aggregate
  // still reflects every insert ever made through any handle.
  EXPECT_EQ(t.stats().insert_attempts, inserts);
}

// ---------------------------------------------------------------------------
// Exact stats aggregation across shards.
// ---------------------------------------------------------------------------

template <typename ReclaimerT>
class HandleStatsTest : public ::testing::Test {};

TYPED_TEST_SUITE(HandleStatsTest, Reclaimers);

TYPED_TEST(HandleStatsTest, ShardAggregationIsExactUnderDisjointChurn) {
  // The stats_test disjoint-stripe schedule, driven through handles: zero
  // conflicts by construction, so stats() must equal the per-op counts
  // exactly — one iflag per insert, one dflag per erase, nothing else. This
  // is the strongest possible check that shard aggregation loses nothing.
  using Tree = EfrbTreeSet<int, std::less<int>, TypeParam, StatsTraits>;
  Tree t;
  constexpr int kThreads = 4;
  constexpr int kStripe = 100;
  constexpr int kRounds = 40;
  std::uint64_t prefill = 0;
  for (int k = 0; k < kThreads * kStripe; ++k, ++prefill) {
    ASSERT_TRUE(t.insert(k));
  }

  std::atomic<std::uint64_t> handle_inserts{0}, handle_erases{0};
  run_threads(kThreads, [&](std::size_t tid) {
    auto h = t.handle();
    std::uint64_t my_inserts = 0, my_erases = 0;
    const int base = static_cast<int>(tid) * kStripe;
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 10; i < kStripe - 10; i += 2) {
        ASSERT_TRUE(h.erase(base + i));
        ++my_erases;
        ASSERT_TRUE(h.insert(base + i));
        ++my_inserts;
      }
    }
    // local_stats() sees exactly this handle's share.
    const auto mine = h.local_stats();
    EXPECT_EQ(mine.insert_attempts, my_inserts);
    EXPECT_EQ(mine.delete_attempts, my_erases);
    handle_inserts.fetch_add(my_inserts);
    handle_erases.fetch_add(my_erases);
    h.flush();
  });

  const auto s = t.stats();
  EXPECT_EQ(s.insert_attempts, prefill + handle_inserts.load());
  EXPECT_EQ(s.delete_attempts, handle_erases.load());
  EXPECT_EQ(s.helps, 0u);
  EXPECT_EQ(s.backtracks, 0u);
  EXPECT_EQ(s.insert_retries, 0u);
  EXPECT_EQ(s.delete_retries, 0u);
}

TYPED_TEST(HandleStatsTest, CountingLawsHoldAcrossShardsUnderContention) {
  // Hot-key contention through handles: attempts split across per-handle
  // shards, but the aggregate must still obey the tree's counting laws.
  using Tree = EfrbTreeSet<int, std::less<int>, TypeParam, StatsTraits>;
  Tree t;
  std::atomic<std::uint64_t> ok_inserts{0}, ok_erases{0};
  run_threads(6, [&](std::size_t tid) {
    auto h = t.handle();
    Xoshiro256 rng(tid * 5 + 3);
    for (int i = 0; i < 4000; ++i) {
      const int k = static_cast<int>(rng.next_below(8));
      if (rng.next_below(2) == 0) {
        ok_inserts += h.insert(k) ? 1 : 0;
      } else {
        ok_erases += h.erase(k) ? 1 : 0;
      }
    }
    h.flush();
  });
  const auto s = t.stats();
  EXPECT_GE(s.insert_attempts, ok_inserts.load());
  EXPECT_LE(s.insert_attempts - ok_inserts.load(), s.insert_retries);
  EXPECT_GE(s.delete_attempts, ok_erases.load() + s.backtracks);
  EXPECT_LE(s.delete_attempts - (ok_erases.load() + s.backtracks),
            s.delete_retries);
}

// ---------------------------------------------------------------------------
// Leaky reclaimer: handle() must still work (no-op attachment).
// ---------------------------------------------------------------------------

TEST(HandleTest, LeakyReclaimerHandlesAreNoOpAttachments) {
  EfrbTreeSet<int, std::less<int>, LeakyReclaimer> t;
  auto h = t.handle();
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(h.insert(1));
  EXPECT_TRUE(h.erase(1));
  h.flush();
  h.detach();
  EXPECT_FALSE(h.valid());
}

}  // namespace
}  // namespace efrb
