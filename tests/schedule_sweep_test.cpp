// Systematic two-thread schedule exploration.
//
// The pause hooks fire at every boundary between protocol steps. For a fixed
// initial tree and a fixed operation A, the sequence of hook hits A produces
// when run alone is deterministic — call its length H. For every N in 1..H we
// rebuild the identical tree, freeze A at its N-th hook hit, run operation B
// to completion, resume A, and verify the outcome against the per-key parity
// oracle computed from the two operations' actual return values. This covers
// every "A is preempted between steps i and i+1" schedule for the chosen op
// pairs — a poor man's model checker over the step boundaries the paper's
// proof reasons about.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "util/barrier.hpp"

namespace efrb {
namespace {

using HookedTree = EfrbTreeSet<int, std::less<int>, EpochReclaimer, CallbackTraits>;

thread_local bool g_counting = false;

/// Hook hits produced by `op` when run alone on a tree prefilled with `keys`.
template <typename OpFn>
int count_hook_hits(const std::vector<int>& keys, OpFn&& op) {
  HookedTree t;
  for (int k : keys) t.insert(k);
  std::atomic<int> hits{0};
  CallbackTraits::at_fn = [&](HookPoint) {
    if (g_counting) hits.fetch_add(1);
  };
  g_counting = true;
  op(t);
  g_counting = false;
  CallbackTraits::reset();
  return hits.load();
}

thread_local bool g_is_op_a = false;

struct SweepOutcome {
  bool a_result;
  bool b_result;
  bool valid;
  std::set<int> final_keys;
};

/// Freeze A at its n-th hook hit, run B, resume A; return all results.
SweepOutcome run_schedule(const std::vector<int>& keys,
                          const std::function<bool(HookedTree&)>& op_a,
                          const std::function<bool(HookedTree&)>& op_b,
                          int pause_at) {
  HookedTree t;
  for (int k : keys) t.insert(k);

  YieldingBarrier reached(2), resume(2);
  std::atomic<int> hits{0};
  CallbackTraits::at_fn = [&](HookPoint) {
    if (!g_is_op_a) return;
    if (hits.fetch_add(1) + 1 == pause_at) {
      reached.arrive_and_wait();
      resume.arrive_and_wait();
    }
  };

  SweepOutcome out{};
  std::thread a([&] {
    g_is_op_a = true;
    out.a_result = op_a(t);
    g_is_op_a = false;
  });
  reached.arrive_and_wait();  // A is parked exactly after its N-th boundary
  out.b_result = op_b(t);     // B runs to completion against the frozen state
  resume.arrive_and_wait();
  a.join();
  CallbackTraits::reset();

  out.valid = t.validate().ok;
  t.for_each([&](const int& k, const auto&) { out.final_keys.insert(k); });
  return out;
}

/// Sweeps all of A's pause points for an (A, B) pair and checks the per-key
/// parity oracle with the actually returned booleans.
void sweep_pair(const std::vector<int>& initial,
                const std::function<bool(HookedTree&)>& op_a, int key_a,
                bool a_is_insert,
                const std::function<bool(HookedTree&)>& op_b, int key_b,
                bool b_is_insert) {
  const int hits = count_hook_hits(initial, op_a);
  ASSERT_GT(hits, 0);
  for (int n = 1; n <= hits; ++n) {
    SCOPED_TRACE("pause at hook hit " + std::to_string(n) + "/" +
                 std::to_string(hits));
    const SweepOutcome out = run_schedule(initial, op_a, op_b, n);
    ASSERT_TRUE(out.valid);

    // Expected membership: initial presence flipped by each successful op.
    std::set<int> keys_touched = {key_a, key_b};
    for (int k : keys_touched) {
      bool present =
          std::count(initial.begin(), initial.end(), k) > 0;
      if (k == key_a && out.a_result) present = a_is_insert;
      if (k == key_b && out.b_result) present = b_is_insert;
      // (For k touched by both with both succeeding, the later writer's kind
      // decides — but an (insert, insert) or (erase, erase) pair on one key
      // cannot both succeed, and insert+erase both succeeding means final
      // state depends on order; those pairs are asserted separately below.)
      if (k == key_a && k == key_b && out.a_result && out.b_result) continue;
      EXPECT_EQ(out.final_keys.count(k) > 0, present) << "key " << k;
    }
    // Untouched initial keys must survive every schedule.
    for (int k : initial) {
      if (k == key_a || k == key_b) continue;
      EXPECT_EQ(out.final_keys.count(k), 1u) << "bystander key " << k;
    }
  }
}

// The Fig. 3(a)-style neighbourhood: enough structure that gp/p/sibling
// relationships between the two operations' windows take every shape as the
// pause point moves.
const std::vector<int> kInitial = {10, 30, 50, 70};

TEST(ScheduleSweepTest, DeleteVsDeleteAdjacent) {
  // The Fig. 3(b) pair: deletes of keys whose windows overlap (one's parent
  // is the other's grandparent at some shapes).
  sweep_pair(
      kInitial, [](HookedTree& t) { return t.erase(30); }, 30, false,
      [](HookedTree& t) { return t.erase(50); }, 50, false);
}

TEST(ScheduleSweepTest, DeleteVsInsertAdjacent) {
  // The Fig. 3(c) pair: delete racing an insert landing in the same window.
  sweep_pair(
      kInitial, [](HookedTree& t) { return t.erase(50); }, 50, false,
      [](HookedTree& t) { return t.insert(40); }, 40, true);
}

TEST(ScheduleSweepTest, InsertVsInsertSameLeaf) {
  // Both inserts replace the same leaf: the second must help the first.
  sweep_pair(
      kInitial, [](HookedTree& t) { return t.insert(31); }, 31, true,
      [](HookedTree& t) { return t.insert(32); }, 32, true);
}

TEST(ScheduleSweepTest, InsertVsDeleteOfSameKey) {
  // B deletes the key A is inserting: both may succeed (order-dependent
  // final state) or B may miss A's key; every schedule must stay valid and
  // bystanders untouched. Final presence of 40: if both succeeded the order
  // was insert-then-delete (a delete can only succeed on a present key), so
  // 40 must be absent.
  const int hits = count_hook_hits(kInitial, [](HookedTree& t) {
    return t.insert(40);
  });
  for (int n = 1; n <= hits; ++n) {
    SCOPED_TRACE("pause at " + std::to_string(n));
    const SweepOutcome out = run_schedule(
        kInitial, [](HookedTree& t) { return t.insert(40); },
        [](HookedTree& t) { return t.erase(40); }, n);
    ASSERT_TRUE(out.valid);
    ASSERT_TRUE(out.a_result) << "insert of an absent key must succeed";
    if (out.b_result) {
      EXPECT_EQ(out.final_keys.count(40), 0u)
          << "insert+delete both succeeded => delete linearized after";
    } else {
      EXPECT_EQ(out.final_keys.count(40), 1u)
          << "delete failed => the inserted key must remain";
    }
    for (int k : kInitial) EXPECT_EQ(out.final_keys.count(k), 1u);
  }
}

TEST(ScheduleSweepTest, DeleteVsReinsertOfSameKey) {
  // A deletes 30 while B re-inserts 30. If B succeeded, it linearized after
  // A's delete (30 was present initially, so insert can succeed only once
  // it is gone) => 30 present at the end. If B failed, A's delete linearized
  // after => 30 absent.
  const int hits = count_hook_hits(kInitial, [](HookedTree& t) {
    return t.erase(30);
  });
  for (int n = 1; n <= hits; ++n) {
    SCOPED_TRACE("pause at " + std::to_string(n));
    const SweepOutcome out = run_schedule(
        kInitial, [](HookedTree& t) { return t.erase(30); },
        [](HookedTree& t) { return t.insert(30); }, n);
    ASSERT_TRUE(out.valid);
    ASSERT_TRUE(out.a_result) << "delete of a present key must succeed";
    EXPECT_EQ(out.final_keys.count(30) > 0, out.b_result);
    for (int k : {10, 50, 70}) EXPECT_EQ(out.final_keys.count(k), 1u);
  }
}

}  // namespace
}  // namespace efrb
