// Tests for the §6 Search variant (Traits::kSearchHelpsMarked): "a Search
// helps Delete operations to perform their dchild CAS steps to remove from
// the tree marked nodes that the Search encounters" — the modification the
// paper proposes to make hazard-pointer reclamation applicable.
//
// Key behavioural difference from the default tree (where Find never helps,
// see HelpingTest.FindNeverHelps): with this variant, a lookup that walks
// into a marked node completes the splice before proceeding.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

/// Sets the stop flag when the scope exits — including early exits from a
/// failed ASSERT_*, which would otherwise leave the churn threads spinning
/// forever and turn the failure into a timeout.
struct StopOnExit {
  std::atomic<bool>& stop;
  ~StopOnExit() { stop.store(true); }
};

using HelpingTree =
    EfrbTreeSet<int, std::less<int>, EpochReclaimer, HelpingSearchTraits>;

// A hybrid traits type: hooks like CallbackTraits plus the §6 search, so we
// can freeze a deleter mid-operation while the tree under test has the
// helping search enabled.
struct HookedHelpingTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = true;
  static void on_cas(CasStep s, bool ok, const void* n) {
    CallbackTraits::on_cas(s, ok, n);
  }
  static void at(HookPoint p) { CallbackTraits::at(p); }
};

using HookedHelpingTree =
    EfrbTreeSet<int, std::less<int>, EpochReclaimer, HookedHelpingTraits>;

thread_local int g_role = 0;

TEST(HelpingSearchTest, SequentialSemanticsUnchanged) {
  HelpingTree t;
  std::set<int> oracle;
  Xoshiro256 rng(42);
  for (int i = 0; i < 6000; ++i) {
    const int k = static_cast<int>(rng.next_below(256));
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) != 0);
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) != 0);
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
  EXPECT_TRUE(t.validate().ok);
}

TEST(HelpingSearchTest, LookupSplicesOutMarkedNode) {
  // Freeze a delete between its mark CAS and its dchild CAS; with the §6
  // search, a subsequent contains() on ANY key routed through the marked
  // node must complete the splice: the deleted key becomes unreachable
  // before the frozen deleter resumes.
  HookedHelpingTree t;
  t.insert(10);
  t.insert(20);

  YieldingBarrier reached(2), resume(2);
  std::atomic<bool> armed{true};
  CallbackTraits::at_fn = [&](HookPoint p) {
    if (g_role == 1 && p == HookPoint::kBeforeDChild && armed.exchange(false)) {
      reached.arrive_and_wait();
      resume.arrive_and_wait();
    }
  };

  std::thread frozen([&] {
    g_role = 1;
    EXPECT_TRUE(t.erase(10));
    g_role = 0;
  });
  reached.arrive_and_wait();

  // The parent of leaf 10 is marked and still linked. A default-traits tree
  // would keep routing through it; this lookup must splice it.
  EXPECT_FALSE(t.contains(10));
  // After one search through the region the marked node must be gone:
  // deleting 20 now requires gp/p to be clean, which only holds post-splice.
  EXPECT_TRUE(t.erase(20));
  EXPECT_TRUE(t.empty());

  resume.arrive_and_wait();
  frozen.join();
  CallbackTraits::reset();
  EXPECT_TRUE(t.validate().ok);
}

TEST(HelpingSearchTest, ConcurrentParityOracle) {
  HelpingTree t;
  constexpr int kKeys = 32;
  std::vector<std::atomic<std::uint64_t>> flips(kKeys);
  run_threads(6, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 17 + 3);
    for (int i = 0; i < 5000; ++i) {
      const int k = static_cast<int>(rng.next_below(kKeys));
      switch (rng.next_below(3)) {
        case 0:
          if (t.insert(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        case 1:
          if (t.erase(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        default:
          t.contains(k);
      }
    }
  });
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(t.contains(k),
              (flips[static_cast<std::size_t>(k)].load() % 2) == 1)
        << "key " << k;
  }
  EXPECT_TRUE(t.validate().ok);
}

TEST(HelpingSearchTest, ReadersDriveCleanupUnderChurn) {
  // Heavy read traffic + update churn: the helping search must never break
  // reads (they see exactly the committed states) and the tree stays valid.
  HelpingTree t;
  t.insert(5000);  // stable pivot
  std::atomic<bool> stop{false};
  run_threads(4, [&](std::size_t tid) {
    if (tid < 2) {  // readers
      StopOnExit guard{stop};
      Xoshiro256 rng(tid + 1);
      for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(t.contains(5000));
        t.contains(static_cast<int>(rng.next_below(1000)));
      }
      stop.store(true);
    } else {  // updaters
      Xoshiro256 rng(tid + 100);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(rng.next_below(1000));
        t.insert(k);
        t.erase(k);
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);
  EXPECT_TRUE(t.contains(5000));
}

TEST(HelpingSearchTest, OrderedQueriesWorkWithHelpingSearch) {
  HelpingTree t;
  for (int k = 0; k < 100; k += 2) t.insert(k);
  EXPECT_EQ(t.find_ge(51), std::optional<int>(52));
  EXPECT_EQ(t.find_le(51), std::optional<int>(50));
  EXPECT_EQ(t.count_range(10, 20), 6u);
  EXPECT_EQ(t.min_key(), std::optional<int>(0));
  EXPECT_EQ(t.max_key(), std::optional<int>(98));
}

}  // namespace
}  // namespace efrb
