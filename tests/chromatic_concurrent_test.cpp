// Concurrent and adversarial validation of the chromatic tree: mixed-op
// storms over every reclaimer, determinism under disjoint key ownership,
// bounded depth under concurrent sorted insertion, and the fault-injection
// matrix — a victim thread stalled at every SCX pause point (freeze, child
// swing, commit, retry, rebalance) while a full op mix runs around it. The
// helping obligation is what keeps the mix from wedging: any thread that
// LLXes a frozen node must complete the stalled transaction itself.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "core/chromatic.hpp"
#include "core/debug_hooks.hpp"
#include "inject/fault_plan.hpp"
#include "inject/fault_scheduler.hpp"
#include "leak_check_opt_out.hpp"  // LeakyReclaimer cells leak by design
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

// scripts/check.sh rebuilds this suite with non-default traits (same knobs
// as core_concurrent_test.cpp): -DEFRB_TEST_FORCE_STATS races the chromatic
// tree's stat shards (including the new depth/rotation counters) under TSan;
// -DEFRB_TEST_POOLED runs every schedule through the ObjectPool, which for
// the chromatic tree also covers pooled ScxRecord recycling.
#if defined(EFRB_TEST_FORCE_STATS)
using TestTraits = StatsTraits;
#elif defined(EFRB_TEST_POOLED)
using TestTraits = PooledTraits;
#else
using TestTraits = NoopTraits;
#endif

template <typename Reclaimer>
using TestChromaticSet =
    ChromaticTreeSet<int, std::less<int>, Reclaimer, TestTraits>;

using inject::FaultAction;
using inject::FaultKind;
using inject::FaultPlan;
using inject::FaultScheduler;
using inject::InjectTraits;

template <typename Reclaimer>
using InjectChromatic =
    ChromaticTreeSet<int, std::less<int>, Reclaimer, InjectTraits>;

FaultAction stall_at(unsigned tid, HookPoint p, unsigned occurrence = 1) {
  FaultAction a;
  a.kind = FaultKind::kStall;
  a.tid = tid;
  a.point = static_cast<int>(p);
  a.occurrence = occurrence;
  return a;
}

FaultAction fail_cas(unsigned tid, CasStep s, unsigned occurrence = 1,
                     unsigned count = 1) {
  FaultAction a;
  a.kind = FaultKind::kFailCas;
  a.tid = tid;
  a.step = static_cast<int>(s);
  a.occurrence = occurrence;
  a.count = count;
  return a;
}

// ---------------------------------------------------------------------------
// Concurrent mixed operations over every reclaimer.
// ---------------------------------------------------------------------------

template <typename Reclaimer>
class ChromaticReclaimerTest : public ::testing::Test {};
using Reclaimers =
    ::testing::Types<EpochReclaimer, HazardReclaimer, LeakyReclaimer>;
TYPED_TEST_SUITE(ChromaticReclaimerTest, Reclaimers);

TYPED_TEST(ChromaticReclaimerTest, MixedOpStormKeepsInvariants) {
  TestChromaticSet<TypeParam> t;
  run_threads(8, [&](std::size_t tid) {
    auto h = t.handle();
    Xoshiro256 rng(tid * 977 + 11);
    for (int i = 0; i < 10'000; ++i) {
      const int k = static_cast<int>(rng.next_below(512));
      switch (rng.next_below(3)) {
        case 0: h.insert(k); break;
        case 1: h.erase(k); break;
        default: h.contains(k); break;
      }
    }
  });
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_LE(v.real_leaves, 512u);
}

TYPED_TEST(ChromaticReclaimerTest, DisjointRangesAreDeterministic) {
  // Each thread owns a private key range: its results are sequential facts,
  // while the tree-wide rebalancing below them is fully concurrent.
  TestChromaticSet<TypeParam> t;
  run_threads(4, [&](std::size_t tid) {
    auto h = t.handle();
    const int base = static_cast<int>(tid) * 1000;
    for (int k = base; k < base + 1000; ++k) ASSERT_TRUE(h.insert(k));
    for (int k = base; k < base + 1000; k += 2) ASSERT_TRUE(h.erase(k));
    for (int k = base + 1; k < base + 1000; k += 2)
      ASSERT_TRUE(h.contains(k));
  });
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, 2000u);
  EXPECT_EQ(t.size(), 2000u);
}

TYPED_TEST(ChromaticReclaimerTest, ContendedHotspotStaysConsistent) {
  // Everyone fights over 16 keys: maximum SCX abort/help pressure.
  TestChromaticSet<TypeParam> t;
  run_threads(8, [&](std::size_t tid) {
    auto h = t.handle();
    Xoshiro256 rng(tid + 1);
    for (int i = 0; i < 5'000; ++i) {
      const int k = static_cast<int>(rng.next_below(16));
      if (rng.next_below(2) == 0) {
        h.insert(k);
      } else {
        h.erase(k);
      }
    }
  });
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_LE(v.real_leaves, 16u);
}

TEST(ChromaticConcurrentShapeTest, ConcurrentSortedInsertStaysShallow) {
  // Four threads interleave one global ascending stream (thread t inserts
  // keys == t mod 4). Cleanup is best-effort under concurrency — a violation
  // can be parked while its window is contended — so the bound is looser
  // than the quiescent one, but must remain a far cry from the EFRB vine.
  TestChromaticSet<EpochReclaimer> t;
  constexpr int kN = 40'000;
  run_threads(4, [&](std::size_t tid) {
    auto h = t.handle();
    for (int k = static_cast<int>(tid); k < kN; k += 4) ASSERT_TRUE(h.insert(k));
  });
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, static_cast<std::size_t>(kN));
  EXPECT_LE(v.height, 120u);  // log2(40k) ~ 15.3; EFRB would sit near 10'000
}

// ---------------------------------------------------------------------------
// Stall at every SCX pause point, full op mix running around the frozen
// thread (the chromatic mirror of fault_injection_test.cpp's matrix).
// ---------------------------------------------------------------------------

template <typename Reclaimer>
class ChromaticFaultMatrixTest : public ::testing::Test {};
TYPED_TEST_SUITE(ChromaticFaultMatrixTest, Reclaimers);

TYPED_TEST(ChromaticFaultMatrixTest, StallAtEveryScxPointUnderOpMix) {
  struct Case {
    HookPoint point;
    bool is_delete;     // victim op: erase(100) vs insert(105)
    int pre_fail_step;  // CasStep forced to fail once first, or -1
  };
  const Case cases[] = {
      {HookPoint::kAfterSearch, false, -1},
      // Insert's window: stalled before the freeze CAS the victim holds
      // nothing; once frozen it holds p, and any op whose window overlaps
      // must help the SCX to completion before its own can proceed.
      {HookPoint::kBeforeFreeze, false, -1},
      {HookPoint::kBeforeScxChild, false, -1},
      {HookPoint::kBeforeScxCommit, false, -1},
      // Erase's window {gp, p, l, s}, with p, l and s finalize-marked (the
      // replacement is always a fresh copy of s — see erase()'s ABA note).
      {HookPoint::kBeforeFreeze, true, -1},
      {HookPoint::kBeforeScxChild, true, -1},
      {HookPoint::kBeforeScxCommit, true, -1},
      // The retry loop, reached by scripting the contention: veto the first
      // freeze CAS so the transaction aborts, then stall in the loop.
      {HookPoint::kScxRetry, false, static_cast<int>(CasStep::kFreeze)},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(std::string("stall point = ") + to_string(c.point) +
                 (c.is_delete ? " (erase)" : " (insert)"));
    InjectChromatic<TypeParam> t;
    for (int k : {100, 110, 120, 130}) ASSERT_TRUE(t.insert(k));

    FaultPlan plan;
    if (c.pre_fail_step >= 0) {
      plan.actions.push_back(
          fail_cas(0, static_cast<CasStep>(c.pre_fail_step)));
    }
    plan.actions.push_back(stall_at(0, c.point));
    FaultScheduler sched(plan);

    bool victim_ret = false;
    std::thread victim([&] {
      FaultScheduler::ThreadScope scope(sched, 0);
      auto h = t.handle();
      victim_ret = c.is_delete ? h.erase(100) : h.insert(105);
    });

    ASSERT_TRUE(sched.wait_until_stalled(0)) << "victim never reached gate";

    // Full op mix on a mostly-disjoint key range while the victim holds its
    // window open at this exact point. The mix must neither wedge nor see a
    // structure with unequal weighted path sums; if a mix thread's window
    // touches a frozen node, helping — not blocking — is the way past.
    run_threads(4, [&](std::size_t tid) {
      auto h = t.handle();
      Xoshiro256 rng(tid * 31 + 7);
      for (int i = 0; i < 1500; ++i) {
        const int k = static_cast<int>(rng.next_below(64));
        switch (rng.next_below(3)) {
          case 0: h.insert(k); break;
          case 1: h.erase(k); break;
          default: h.contains(k); break;
        }
      }
    });
    EXPECT_TRUE(t.validate().ok);
    EXPECT_TRUE(sched.is_stalled(0));

    sched.release(0);
    victim.join();
    EXPECT_TRUE(victim_ret);
    EXPECT_EQ(t.contains(c.is_delete ? 100 : 105), !c.is_delete);
    EXPECT_TRUE(t.validate().ok);

    // The stall must have been scripted, not incidental.
    bool saw_stall = false;
    for (const auto& e : sched.fired()) {
      saw_stall |= e.kind == FaultKind::kStall &&
                   e.point == static_cast<int>(c.point);
    }
    EXPECT_TRUE(saw_stall);
  }
}

// ---------------------------------------------------------------------------
// Stall inside a rebalancing transaction.
// ---------------------------------------------------------------------------

TEST(ChromaticFaultTest, StallBeforeRebalanceUnderOpMix) {
  // A sorted run of inserts is guaranteed to create a red-red violation and
  // enter cleanup; the victim freezes at kBeforeRebalance — violation found,
  // fixing SCX not yet started. Nothing is held at that point, so the mix
  // runs completely undisturbed; the released victim then repairs a window
  // the mix may have rewritten under it, which must abort-and-rescan, never
  // damage the structure.
  InjectChromatic<EpochReclaimer> t;
  FaultScheduler sched(
      FaultPlan{{stall_at(0, HookPoint::kBeforeRebalance)}});

  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    for (int k = 200; k < 240; ++k) h.insert(k);
  });
  ASSERT_TRUE(sched.wait_until_stalled(0)) << "sorted inserts never rebalanced";

  run_threads(4, [&](std::size_t tid) {
    auto h = t.handle();
    Xoshiro256 rng(tid * 17 + 3);
    for (int i = 0; i < 1500; ++i) {
      const int k = static_cast<int>(rng.next_below(64));
      switch (rng.next_below(3)) {
        case 0: h.insert(k); break;
        case 1: h.erase(k); break;
        default: h.contains(k); break;
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);

  sched.release(0);
  victim.join();
  EXPECT_TRUE(t.validate().ok);
  for (int k = 200; k < 240; ++k) EXPECT_TRUE(t.contains(k));
}

// ---------------------------------------------------------------------------
// Helping completes a stalled erase.
// ---------------------------------------------------------------------------

TEST(ChromaticFaultTest, HelpingCompletesStalledErase) {
  InjectChromatic<EpochReclaimer> t;
  for (int k : {10, 30, 50, 70}) ASSERT_TRUE(t.insert(k));

  FaultScheduler sched(
      FaultPlan{{stall_at(0, HookPoint::kBeforeScxChild)}});

  bool victim_ret = false;
  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    victim_ret = h.erase(30);
  });
  ASSERT_TRUE(sched.wait_until_stalled(0));

  // The victim froze its whole window {gp, p, l, s} and is parked before the
  // child swing. A second eraser of the same key LLXes into the frozen
  // window, must help the stalled transaction to completion, and then report
  // the key already absent.
  {
    FaultScheduler::ThreadScope scope(sched, 1);
    auto h = t.handle();
    EXPECT_FALSE(h.erase(30));
  }
  EXPECT_FALSE(t.contains(30));
  EXPECT_GE(sched.point_hits(1, HookPoint::kBeforeHelp), 1u);

  // The released victim finds its SCX already committed by the helper and
  // must still report success — the transaction was *its* record.
  sched.release(0);
  victim.join();
  EXPECT_TRUE(victim_ret);
  EXPECT_TRUE(t.validate().ok);
  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.contains(50));
  EXPECT_TRUE(t.contains(70));
}

// ---------------------------------------------------------------------------
// SCX child-swing ABA regression: a stalled helper's child CAS must never
// fire after its record committed and the field moved on.
// ---------------------------------------------------------------------------

TEST(ChromaticFaultTest, StalledInsertHelperCannotResurrectErasedSubtree) {
  // The adversarial schedule from the ABA analysis: the victim's fast-path
  // insert (V = {p}, the displaced leaf stays alive below the new internal,
  // nothing finalized) stalls between freezing p and its child CAS; a
  // second thread helps the SCX to completion; an erase of the new key then
  // splices the new internal back out of the very same child field,
  // retiring it. When the victim finally executes CAS(field, leaf,
  // internal), the field must not have returned to `leaf` — erase linking a
  // fresh copy of the sibling (never the old leaf by pointer) is what
  // guarantees it. A sibling hoisted by pointer would hand the stalled CAS
  // its expected value back, re-linking the retired internal: the erased
  // key would resurrect and the retired nodes would become reachable again.
  InjectChromatic<EpochReclaimer> t;
  for (int k : {100, 110, 120, 130}) ASSERT_TRUE(t.insert(k));

  FaultScheduler sched(FaultPlan{{stall_at(0, HookPoint::kBeforeScxChild)}});

  bool victim_ret = false;
  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    victim_ret = h.insert(105);
  });
  ASSERT_TRUE(sched.wait_until_stalled(0)) << "victim never reached gate";

  {
    FaultScheduler::ThreadScope scope(sched, 1);
    auto h = t.handle();
    // Same-key insert runs into the frozen window, must help the stalled
    // SCX to completion (105 is linked by the helper's child CAS), and then
    // reports the duplicate.
    EXPECT_FALSE(h.insert(105));
    EXPECT_GE(sched.point_hits(1, HookPoint::kBeforeHelp), 1u);
    EXPECT_TRUE(h.contains(105));
    // Splice 105 straight back out of the same field the victim's pending
    // CAS targets, retiring the new internal and both leaves below it.
    EXPECT_TRUE(h.erase(105));
    EXPECT_FALSE(h.contains(105));
  }

  // The released victim's child CAS must fail (the field holds the erase's
  // fresh sibling copy, never the old leaf again); its record was committed
  // by the helper, so the insert still reports success.
  sched.release(0);
  victim.join();
  EXPECT_TRUE(victim_ret);
  EXPECT_FALSE(t.contains(105));
  for (int k : {100, 110, 120, 130}) EXPECT_TRUE(t.contains(k));
  const auto v = t.validate();
  EXPECT_TRUE(v.ok) << v.error;
}

// ---------------------------------------------------------------------------
// Forced freeze failure exercises the abort/retry edge deterministically.
// ---------------------------------------------------------------------------

TEST(ChromaticFaultTest, ForcedFreezeFailureRetriesThenSucceeds) {
  InjectChromatic<EpochReclaimer> t;
  for (int k : {10, 30, 50}) ASSERT_TRUE(t.insert(k));

  FaultScheduler sched(FaultPlan{{fail_cas(0, CasStep::kFreeze)}});
  {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    EXPECT_TRUE(h.erase(30));
  }
  EXPECT_FALSE(t.contains(30));
  EXPECT_TRUE(t.validate().ok);

  // The vetoed freeze forces: SCX abort, delete retry, a fresh LLX window,
  // and a second (successful) freeze sequence.
  EXPECT_GE(sched.step_hits(0, CasStep::kFreeze), 2u);
  EXPECT_GE(t.stats().delete_retries, 1u);
  const auto fired = sched.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, FaultKind::kFailCas);
  EXPECT_EQ(fired[0].step, static_cast<int>(CasStep::kFreeze));
}

// ---------------------------------------------------------------------------
// Cleanup-abandonment regression: when every fix SCX is vetoed, the bounded
// cleanup loop hits kMaxCleanupRounds and gives up with the violation still
// in the tree. The fix under test: the abandonment is counted
// (TreeStats::cleanup_abandoned) and the violation key is parked so the next
// mutating op — even one that commits violation-free and would never trigger
// cleanup itself — resumes the repair. On the old code the parked red-red
// pair survived indefinitely, off every later search path.
// ---------------------------------------------------------------------------

TEST(ChromaticFaultTest, AbandonedCleanupIsCountedAndResumedByNextMutation) {
  InjectChromatic<EpochReclaimer> t;

  // Deterministic single-threaded setup: ascending inserts 1..4 each commit
  // with one freeze (fast path V={p}); insert(4) lands a red leaf-internal
  // under the red internal(3), which triggers cleanup. Vetoing every freeze
  // from the 5th on lets all four inserts commit but fails every fix SCX,
  // so cleanup burns its full round budget and abandons.
  FaultScheduler sched(
      FaultPlan{{fail_cas(0, CasStep::kFreeze, /*occurrence=*/5,
                          /*count=*/100000)}});
  {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    for (int k : {1, 2, 3, 4}) ASSERT_TRUE(h.insert(k));
  }

  // The abandonment is visible: counted, and the red-red pair is still in
  // the tree (hard invariants hold; balance does not).
  EXPECT_GE(t.stats().cleanup_abandoned, 1u);
  const auto before = t.validate();
  ASSERT_TRUE(before.ok) << before.error;
  ASSERT_GE(before.red_red, 1u);

  // A mutating op whose own commit is violation-free (insert(0) hangs a red
  // internal under the black internal(2) — no trigger) must still drain the
  // parked repair. No scheduler is bound, so the resumed fixes succeed.
  ASSERT_TRUE(t.insert(0));

  const auto after = t.validate();
  EXPECT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.red_red, 0u);
  EXPECT_EQ(after.overweight, 0u);
  for (int k : {0, 1, 2, 3, 4}) EXPECT_TRUE(t.contains(k));
}

}  // namespace
}  // namespace efrb
