// Tests for the perf-regression pipeline (PR 10): the dependency-free JSON
// parser (escapes, surrogate pairs, strict number grammar, depth cap,
// trailing-garbage rejection) and the snapshot comparison engine behind
// tools/efrb_perfdiff — identical snapshots compare clean, a doctored 2x
// regression is flagged, improvements are tracked separately, absolute
// floors suppress microscopic swings, cross-host comparisons refuse unless
// forced, and min-of-N snapshots earn a halved threshold.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "obs/json_parse.hpp"
#include "obs/perfdiff.hpp"

namespace efrb {
namespace {

using obs::JsonValue;
using obs::MetricDelta;
using obs::PerfDiffOptions;
using obs::PerfDiffReport;

// ----------------------------------------------------------- json parser

TEST(JsonParseTest, ParsesScalarsAndContainers) {
  std::string err;
  std::optional<JsonValue> v = obs::parse_json(
      R"({"a": 1.5, "b": [true, false, null], "c": {"d": -2e3}})", &err);
  ASSERT_TRUE(v.has_value()) << err;
  EXPECT_DOUBLE_EQ(v->number_at("a", 0), 1.5);
  const JsonValue* b = v->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_FALSE(b->array[1].boolean);
  EXPECT_TRUE(b->array[2].is_null());
  EXPECT_DOUBLE_EQ(v->number_at("c.d", 0), -2000.0);
  EXPECT_DOUBLE_EQ(v->number_at("missing.path", 7.0), 7.0);
}

TEST(JsonParseTest, DecodesEscapesAndSurrogatePairs) {
  std::string err;
  std::optional<JsonValue> v = obs::parse_json(
      R"({"s": "a\"b\\c\ndA😀"})", &err);
  ASSERT_TRUE(v.has_value()) << err;
  EXPECT_EQ(v->string_at("s"), "a\"b\\c\ndA\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(obs::parse_json("{\"a\": 1} trailing", &err).has_value());
  EXPECT_NE(err.find("trailing"), std::string::npos);
  EXPECT_FALSE(obs::parse_json("{\"a\": 01}").has_value());   // leading zero
  EXPECT_FALSE(obs::parse_json("{\"a\": 1.}").has_value());   // bad fraction
  EXPECT_FALSE(obs::parse_json("{\"a\": }").has_value());
  EXPECT_FALSE(obs::parse_json("{\"a\" 1}").has_value());     // no colon
  EXPECT_FALSE(obs::parse_json(R"({"s":"\q"})").has_value()); // bad escape
  EXPECT_FALSE(obs::parse_json(R"({"s":"\uD800"})").has_value());  // lone hi
  EXPECT_FALSE(obs::parse_json("\"unterminated").has_value());
  EXPECT_FALSE(obs::parse_json("").has_value());
}

TEST(JsonParseTest, DepthCapStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  std::string err;
  EXPECT_FALSE(obs::parse_json(deep, &err).has_value());
  EXPECT_NE(err.find("deep"), std::string::npos);
}

// ------------------------------------------------------- perfdiff engine

/// A one-cell efrb-metrics document with tweakable knobs. `host` empty =
/// no meta block (what freshly-run binaries emit).
std::string make_doc(double mops, double p99 = 800.0,
                     double cycles_per_op = 450.0,
                     const std::string& host = "", int repeats = 0,
                     int seed = 42) {
  std::string s = R"({"schema":"efrb-metrics","schema_version":4,"tool":"t",)";
  if (!host.empty() || repeats > 0) {
    s += "\"meta\":{";
    bool first = true;
    if (!host.empty()) {
      s += "\"hostname\":\"" + host + "\"";
      first = false;
    }
    if (repeats > 0) {
      if (!first) s += ",";
      s += "\"repeats\":" + std::to_string(repeats);
    }
    s += "},";
  }
  s += R"("cells":[{"name":"efrb-tree/bench","config":{"threads":4,)";
  s += "\"mix\":\"balanced\",\"key_range\":1024,\"seed\":" +
       std::to_string(seed) + ",\"duration_ms\":100},";
  s += "\"result\":{\"mops\":" + std::to_string(mops) + "},";
  s += "\"latency\":{\"find\":{\"p50_ns\":300,\"p99_ns\":" +
       std::to_string(p99) + "}},";
  s += "\"profile\":{\"cycles_per_op\":" + std::to_string(cycles_per_op) +
       "}}]}";
  return s;
}

JsonValue parse_ok(const std::string& text) {
  std::string err;
  std::optional<JsonValue> v = obs::parse_json(text, &err);
  EXPECT_TRUE(v.has_value()) << err;
  return v.has_value() ? *v : JsonValue{};
}

TEST(PerfDiffTest, IdenticalSnapshotsCompareClean) {
  const JsonValue doc = parse_ok(make_doc(5.0));
  const PerfDiffReport rep = obs::perfdiff(doc, doc);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.regressions(), 0u);
  EXPECT_EQ(rep.improvements(), 0u);
  EXPECT_FALSE(rep.deltas.empty());  // metrics compared, all inside the band
}

TEST(PerfDiffTest, DoctoredTwoXRegressionIsFlagged) {
  const JsonValue base = parse_ok(make_doc(5.0, 800.0, 450.0));
  // Candidate: throughput halved, p99 doubled, cycles/op doubled.
  const JsonValue cand = parse_ok(make_doc(2.5, 1600.0, 900.0));
  const PerfDiffReport rep = obs::perfdiff(base, cand);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.regressions(), 3u);
  bool saw_mops = false;
  for (const MetricDelta& d : rep.deltas) {
    if (d.metric == "result.mops") {
      saw_mops = true;
      EXPECT_TRUE(d.regression);
      EXPECT_NEAR(d.rel_change, 0.5, 1e-9);  // mops halved = 50% worse
    }
  }
  EXPECT_TRUE(saw_mops);
  const std::string table = obs::render_perfdiff(rep);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
  EXPECT_NE(table.find("result.mops"), std::string::npos);
}

TEST(PerfDiffTest, ImprovementsAreTrackedNotFlagged) {
  const JsonValue base = parse_ok(make_doc(2.5, 1600.0, 900.0));
  const JsonValue cand = parse_ok(make_doc(5.0, 800.0, 450.0));
  const PerfDiffReport rep = obs::perfdiff(base, cand);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.regressions(), 0u);
  EXPECT_EQ(rep.improvements(), 3u);
}

TEST(PerfDiffTest, AbsoluteFloorsSuppressMicroscopicSwings) {
  // 0.002 -> 0.001 mops is 50% relative but far below the 0.01 Mops floor.
  const JsonValue base = parse_ok(make_doc(0.002));
  const JsonValue cand = parse_ok(make_doc(0.001));
  const PerfDiffReport rep = obs::perfdiff(base, cand);
  ASSERT_TRUE(rep.ok) << rep.error;
  for (const MetricDelta& d : rep.deltas) {
    if (d.metric == "result.mops") EXPECT_FALSE(d.regression);
  }
}

TEST(PerfDiffTest, CrossHostRefusesUnlessForced) {
  const JsonValue a = parse_ok(make_doc(5.0, 800, 450, "host-a"));
  const JsonValue b = parse_ok(make_doc(5.0, 800, 450, "host-b"));
  const PerfDiffReport refused = obs::perfdiff(a, b);
  EXPECT_FALSE(refused.ok);
  EXPECT_TRUE(refused.cross_host_refused);
  EXPECT_NE(refused.error.find("host"), std::string::npos);

  PerfDiffOptions opts;
  opts.allow_cross_host = true;
  const PerfDiffReport forced = obs::perfdiff(a, b, opts);
  ASSERT_TRUE(forced.ok) << forced.error;
  bool noted = false;
  for (const std::string& n : forced.notes) {
    if (n.find("cross-host") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(PerfDiffTest, MissingMetaSkipsTheHostGuard) {
  // Fresh runs carry no meta (bench_json.sh injects it); same-host and
  // no-meta documents must compare without refusal.
  const JsonValue bare = parse_ok(make_doc(5.0));
  const JsonValue hosted = parse_ok(make_doc(5.0, 800, 450, "host-a"));
  EXPECT_TRUE(obs::perfdiff(bare, bare).ok);
  EXPECT_TRUE(obs::perfdiff(bare, hosted).ok);
  EXPECT_TRUE(obs::perfdiff(hosted, hosted).ok);
}

TEST(PerfDiffTest, RepeatsEarnAHalvedThreshold) {
  const JsonValue single = parse_ok(make_doc(5.0));
  const JsonValue rep3a = parse_ok(make_doc(5.0, 800, 450, "h", 3));
  const JsonValue rep3b = parse_ok(make_doc(5.0, 800, 450, "h", 5));
  PerfDiffOptions opts;
  opts.rel_threshold = 0.2;
  EXPECT_DOUBLE_EQ(obs::perfdiff(single, single, opts).effective_threshold,
                   0.2);
  EXPECT_DOUBLE_EQ(obs::perfdiff(rep3a, rep3b, opts).effective_threshold,
                   0.1);
  // One single-shot side keeps the full threshold.
  EXPECT_DOUBLE_EQ(obs::perfdiff(single, rep3b, opts).effective_threshold,
                   0.2);
}

TEST(PerfDiffTest, UnmatchedCellsBecomeNotesAndNoMatchIsAnError) {
  const JsonValue a = parse_ok(make_doc(5.0));
  std::string other = make_doc(5.0);
  // Rename the cell so nothing matches.
  const std::size_t at = other.find("efrb-tree/bench");
  other.replace(at, 15, "other-tree/cell");
  const JsonValue b = parse_ok(other);
  const PerfDiffReport rep = obs::perfdiff(a, b);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("no cells matched"), std::string::npos);
}

TEST(PerfDiffTest, SeedDriftIsNotedButStillCompared) {
  const JsonValue a = parse_ok(make_doc(5.0, 800, 450, "", 0, 42));
  const JsonValue b = parse_ok(make_doc(5.0, 800, 450, "", 0, 43));
  const PerfDiffReport rep = obs::perfdiff(a, b);
  ASSERT_TRUE(rep.ok) << rep.error;
  bool noted = false;
  for (const std::string& n : rep.notes) {
    if (n.find("seed differs") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(PerfDiffTest, SchemaGuardRejectsForeignOrAncientDocuments) {
  const JsonValue good = parse_ok(make_doc(5.0));
  const JsonValue foreign = parse_ok(R"({"schema":"other","cells":[]})");
  EXPECT_FALSE(obs::perfdiff(good, foreign).ok);
  const JsonValue ancient = parse_ok(
      R"({"schema":"efrb-metrics","schema_version":1,"cells":[]})");
  EXPECT_FALSE(obs::perfdiff(good, ancient).ok);
  EXPECT_FALSE(obs::perfdiff(ancient, good).ok);
}

TEST(PerfDiffTest, MetricsAbsentOnEitherSideAreSkippedSilently) {
  const JsonValue full = parse_ok(make_doc(5.0));
  // A document whose cell has only the result (no latency, no profile).
  const JsonValue lean = parse_ok(
      R"({"schema":"efrb-metrics","schema_version":4,"tool":"t","cells":[)"
      R"({"name":"efrb-tree/bench","config":{"threads":4,"mix":"balanced",)"
      R"("key_range":1024,"seed":42,"duration_ms":100},)"
      R"("result":{"mops":5.0}}]})");
  const PerfDiffReport rep = obs::perfdiff(full, lean);
  ASSERT_TRUE(rep.ok) << rep.error;
  for (const MetricDelta& d : rep.deltas) {
    EXPECT_EQ(d.metric, "result.mops");  // the only shared metric
  }
  EXPECT_EQ(rep.regressions(), 0u);
}

}  // namespace
}  // namespace efrb
