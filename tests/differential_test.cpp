// Differential testing: every dictionary implementation in the repository is
// driven through the SAME pseudo-random operation sequence and must return
// bit-identical results at every step. A divergence pins the bug to a single
// implementation rather than to the harness or the oracle.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "baselines/coarse_bst.hpp"
#include "baselines/cow_bst.hpp"
#include "baselines/finelock_bst.hpp"
#include "baselines/harris_list.hpp"
#include "baselines/locked_map.hpp"
#include "baselines/set_interface.hpp"
#include "baselines/skiplist.hpp"
#include "core/chromatic.hpp"
#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "reclaim/hazard.hpp"
#include "shard/sharded_map.hpp"
#include "util/rng.hpp"

namespace efrb {
namespace {

/// Range router sized to the scripts' key universe so the differential
/// actually exercises cross-shard routing (the stock default of 2^16 would
/// park every scripted key in shard 0).
struct SmallRangeRouter : shard::RangeRouter {
  SmallRangeRouter() noexcept : RangeRouter(/*shards=*/4, /*key_range=*/4096) {}
};

struct Step {
  int op;  // 0 = insert, 1 = erase, 2 = contains
  int key;
};

std::vector<Step> make_script(std::uint64_t seed, int n,
                              std::uint64_t range) {
  std::vector<Step> script;
  script.reserve(static_cast<std::size_t>(n));
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    script.push_back(Step{static_cast<int>(rng.next_below(3)),
                          static_cast<int>(rng.next_below(range))});
  }
  return script;
}

template <typename Set>
std::vector<bool> run_script(const std::vector<Step>& script) {
  Set s;
  std::vector<bool> results;
  results.reserve(script.size());
  for (const Step& step : script) {
    switch (step.op) {
      case 0: results.push_back(s.insert(step.key)); break;
      case 1: results.push_back(s.erase(step.key)); break;
      default: results.push_back(s.contains(step.key));
    }
  }
  return results;
}

class DifferentialSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(DifferentialSweep, AllImplementationsAgreeStepByStep) {
  const auto [seed, range] = GetParam();
  const auto script = make_script(seed, 4000, range);

  const auto reference = run_script<EfrbTreeSet<int>>(script);
  const struct {
    const char* name;
    std::vector<bool> results;
  } others[] = {
      {"efrb-helping-search",
       run_script<EfrbTreeSet<int, std::less<int>, EpochReclaimer,
                              HelpingSearchTraits>>(script)},
      {"chromatic", run_script<ChromaticTreeSet<int>>(script)},
      {"chromatic-pooled",
       run_script<ChromaticTreeSet<int, std::less<int>, EpochReclaimer,
                                   PooledTraits>>(script)},
      {"coarse", run_script<CoarseLockBst<int>>(script)},
      {"finelock", run_script<FineLockBst<int>>(script)},
      {"stdmap", run_script<LockedStdSet<int>>(script)},
      {"harris", run_script<HarrisList<int>>(script)},
      {"skiplist", run_script<LockFreeSkipList<int>>(script)},
      {"cow", run_script<CowBst<int>>(script)},
      {"sharded-hash-efrb",
       run_script<shard::ShardedSet<EfrbTreeSet<int>>>(script)},
      {"sharded-range-chromatic",
       run_script<shard::ShardedSet<ChromaticTreeSet<int>, SmallRangeRouter>>(
           script)},
  };

  for (const auto& other : others) {
    ASSERT_EQ(other.results.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(other.results[i], reference[i])
          << other.name << " diverges at step " << i << " (op "
          << script[i].op << " key " << script[i].key << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByRange, DifferentialSweep,
    ::testing::Values(std::make_tuple(1, 8), std::make_tuple(2, 8),
                      std::make_tuple(3, 128), std::make_tuple(4, 128),
                      std::make_tuple(5, 4096), std::make_tuple(6, 4096)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_range" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Map-level differential: the same idea over the full ConcurrentMap surface
// (get / insert(k,v) / insert_or_assign / replace / erase). The template is
// constrained by the concept itself, so only genuine ConcurrentMap models can
// even be instantiated.
// ---------------------------------------------------------------------------

struct MapStep {
  int op;  // 0 ins, 1 ioa, 2 replace, 3 erase, 4 get, 5 contains
  int key;
  int value;
  int expected;  // for replace
};

std::vector<MapStep> make_map_script(std::uint64_t seed, int n,
                                     std::uint64_t range) {
  std::vector<MapStep> script;
  script.reserve(static_cast<std::size_t>(n));
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    script.push_back(MapStep{static_cast<int>(rng.next_below(6)),
                             static_cast<int>(rng.next_below(range)),
                             static_cast<int>(rng.next_below(8)),
                             static_cast<int>(rng.next_below(8))});
  }
  return script;
}

/// Step results encoded as ints so bool and optional<int> outcomes compare
/// uniformly (-1 = absent).
template <ConcurrentMap Map>
std::vector<int> run_map_script(const std::vector<MapStep>& script) {
  Map m;
  std::vector<int> results;
  results.reserve(script.size());
  for (const MapStep& s : script) {
    switch (s.op) {
      case 0: results.push_back(m.insert(s.key, s.value)); break;
      case 1: results.push_back(m.insert_or_assign(s.key, s.value)); break;
      case 2: results.push_back(m.replace(s.key, s.expected, s.value)); break;
      case 3: results.push_back(m.erase(s.key)); break;
      case 4: results.push_back(m.get(s.key).value_or(-1)); break;
      default: results.push_back(m.contains(s.key));
    }
  }
  return results;
}

class MapDifferentialSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(MapDifferentialSweep, AllMapsAgreeStepByStep) {
  const auto [seed, range] = GetParam();
  const auto script = make_map_script(seed, 4000, range);

  const auto reference = run_map_script<LockedStdMap<int, int>>(script);
  const struct {
    const char* name;
    std::vector<int> results;
  } others[] = {
      {"efrb-map", run_map_script<EfrbTreeMap<int, int>>(script)},
      {"efrb-map-hazard",
       run_map_script<EfrbTreeMap<int, int, std::less<int>, HazardReclaimer>>(
           script)},
      {"efrb-map-stats",
       run_map_script<EfrbTreeMap<int, int, std::less<int>, EpochReclaimer,
                                  StatsTraits>>(script)},
      {"chromatic-map", run_map_script<ChromaticTreeMap<int, int>>(script)},
      {"chromatic-map-hazard",
       run_map_script<
           ChromaticTreeMap<int, int, std::less<int>, HazardReclaimer>>(
           script)},
      {"chromatic-map-stats",
       run_map_script<ChromaticTreeMap<int, int, std::less<int>,
                                       EpochReclaimer, StatsTraits>>(script)},
      {"sharded-hash-efrb",
       run_map_script<shard::ShardedMap<EfrbTreeMap<int, int>>>(script)},
      {"sharded-hash-chromatic-hazard",
       run_map_script<shard::ShardedMap<
           ChromaticTreeMap<int, int, std::less<int>, HazardReclaimer>>>(
           script)},
      {"sharded-range-efrb-hazard",
       run_map_script<shard::ShardedMap<
           EfrbTreeMap<int, int, std::less<int>, HazardReclaimer>,
           SmallRangeRouter>>(script)},
      {"sharded-range-chromatic",
       run_map_script<shard::ShardedMap<ChromaticTreeMap<int, int>,
                                        SmallRangeRouter>>(script)},
  };

  for (const auto& other : others) {
    ASSERT_EQ(other.results.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(other.results[i], reference[i])
          << other.name << " diverges at step " << i << " (op "
          << script[i].op << " key " << script[i].key << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByRange, MapDifferentialSweep,
    ::testing::Values(std::make_tuple(11, 8), std::make_tuple(12, 128),
                      std::make_tuple(13, 4096)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_range" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace efrb
