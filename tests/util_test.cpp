// Unit tests for src/util/: PRNGs, backoff, barrier, fork/join helper,
// summary statistics, cache-line padding.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "util/backoff.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

TEST(SplitMix64Test, DeterministicForSameSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256Test, NextBelowRespectsBound) {
  Xoshiro256 rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256Test, NextBelowZeroBoundReturnsZero) {
  Xoshiro256 rng(42);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro256Test, NextBelowCoversSmallRange) {
  Xoshiro256 rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

TEST(BackoffTest, ResetRestartsEscalation) {
  Backoff b(16);
  for (int i = 0; i < 20; ++i) b();  // escalate past the cap (yields)
  b.reset();
  b();  // must not hang or crash after reset
  SUCCEED();
}

TEST(CachePaddedTest, SizeAndAlignment) {
  EXPECT_EQ(sizeof(CachePadded<int>), kCacheLineSize);
  EXPECT_EQ(alignof(CachePadded<int>), kCacheLineSize);
  // A type bigger than one line still gets line-aligned, line-multiple size.
  struct Big {
    char data[100];
  };
  EXPECT_EQ(sizeof(CachePadded<Big>) % kCacheLineSize, 0u);
}

TEST(CachePaddedTest, ElementsOfArrayDoNotShareLines) {
  std::vector<CachePadded<std::uint64_t>> v(4);
  for (std::size_t i = 1; i < v.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&v[i - 1].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&v[i].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(CachePaddedTest, AccessorsWork) {
  CachePadded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p += 1;
  EXPECT_EQ(p.value, 42);
}

TEST(YieldingBarrierTest, SingleThreadPassesImmediately) {
  YieldingBarrier b(1);
  b.arrive_and_wait();
  b.arrive_and_wait();  // reusable
  SUCCEED();
}

TEST(YieldingBarrierTest, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  YieldingBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<int> observed(kThreads, 0);
  run_threads(kThreads, [&](std::size_t tid) {
    for (int p = 0; p < kPhases; ++p) {
      phase_counter.fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier, all kThreads increments of this phase are visible.
      EXPECT_GE(phase_counter.load(), (p + 1) * kThreads);
      barrier.arrive_and_wait();
      observed[tid] = p;
    }
  });
  for (int o : observed) EXPECT_EQ(o, kPhases - 1);
}

TEST(RunThreadsTest, AllThreadsRunWithDistinctIds) {
  std::atomic<std::uint64_t> id_bits{0};
  run_threads(8, [&](std::size_t tid) {
    id_bits.fetch_or(std::uint64_t{1} << tid);
  });
  EXPECT_EQ(id_bits.load(), 0xFFu);
}

TEST(RunThreadsTest, PropagatesWorkerException) {
  EXPECT_THROW(
      run_threads(3,
                  [&](std::size_t tid) {
                    if (tid == 1) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SummaryTest, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1.0);
}

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

// percentile() caches its sorted copy; add() must invalidate the cache so
// later percentiles see the new samples (and interleaved add/percentile
// sequences match a freshly built Summary).
TEST(SummaryTest, PercentileCacheInvalidatedByAdd) {
  Summary s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(100), 10.0, 1e-9);  // populates the cache
  s.add(1000.0);
  EXPECT_NEAR(s.percentile(100), 1000.0, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);

  // Interleaved adds and queries agree with a one-shot Summary.
  Summary interleaved, oneshot;
  for (int i = 0; i < 50; ++i) {
    const double x = (i * 37) % 50;
    interleaved.add(x);
    if (i % 7 == 0) interleaved.percentile(50);  // repeatedly warm the cache
    oneshot.add(x);
  }
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(interleaved.percentile(p), oneshot.percentile(p));
  }
}

TEST(SummaryTest, RepeatedPercentileCallsAreStable) {
  Summary s;
  for (int i = 100; i >= 1; --i) s.add(i);  // reverse order: sort must happen
  const double first = s.percentile(90);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(s.percentile(90), first);
  EXPECT_NEAR(first, 90.1, 1.0);
}

TEST(BackoffTest, EscalatesIntoYieldPhasePastCap) {
  Backoff b(4);
  EXPECT_FALSE(b.yielding());
  b();  // 1 -> 2
  b();  // 2 -> 4
  b();  // 4 -> cap+1: yield phase
  EXPECT_TRUE(b.yielding());
  b.reset();
  EXPECT_FALSE(b.yielding());
}

TEST(BackoffTest, ExtremeSpinCapIsClampedSoYieldSentinelCannotWrap) {
  // The yield phase is encoded as limit_ == cap_ + 1; with cap_ ==
  // UINT32_MAX that sentinel wrapped to 0 and the instance degenerated into
  // a zero-iteration busy loop that never yields again. The constructor now
  // clamps the cap, keeping cap_ + 1 representable.
  Backoff extreme(std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(extreme.spin_cap(), Backoff::kMaxSpinCap);
  Backoff at_limit(Backoff::kMaxSpinCap);
  EXPECT_EQ(at_limit.spin_cap(), Backoff::kMaxSpinCap);
  Backoff normal(16);
  EXPECT_EQ(normal.spin_cap(), 16u);
}

TEST(BackoffTest, YieldPhaseDecaysBackToSpinAfterBurst) {
  Backoff b(4);
  while (!b.yielding()) b();
  // kYieldBurst consecutive yields re-enter the spin phase: a long-lived
  // per-handle Backoff must not stay in the yield regime forever after one
  // contention spike (the bug this guards against: escalation was one-way).
  for (std::uint32_t i = 0; i < Backoff::kYieldBurst; ++i) b();
  EXPECT_FALSE(b.yielding());
  // And if contention really persists, it re-escalates within one doubling.
  b();
  EXPECT_TRUE(b.yielding());
}

}  // namespace
}  // namespace efrb
