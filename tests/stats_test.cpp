// Tests for the per-tree operation counters (StatsTraits / stats_snapshot):
// the observability surface benchmarks E3/E5 rely on. Verifies counting laws
// rather than absolute values, which are schedule-dependent.
#include <gtest/gtest.h>

#include <atomic>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

using StatsTree =
    EfrbTreeSet<int, std::less<int>, EpochReclaimer, StatsTraits>;

TEST(StatsTest, DefaultTraitsReportZeros) {
  EfrbTreeSet<int> t;  // NoopTraits: counters compiled out
  for (int k = 0; k < 100; ++k) t.insert(k);
  const auto s = t.stats();
  EXPECT_EQ(s.insert_attempts, 0u);
  EXPECT_EQ(s.helps, 0u);
}

TEST(StatsTest, SequentialRunHasNoCoordinationTraffic) {
  StatsTree t;
  for (int k = 0; k < 500; ++k) ASSERT_TRUE(t.insert(k));
  for (int k = 0; k < 500; k += 2) ASSERT_TRUE(t.erase(k));
  const auto s = t.stats();
  EXPECT_EQ(s.insert_attempts, 500u);  // one iflag per successful insert
  EXPECT_EQ(s.delete_attempts, 250u);
  EXPECT_EQ(s.insert_retries, 0u);     // nobody to conflict with
  EXPECT_EQ(s.delete_retries, 0u);
  EXPECT_EQ(s.helps, 0u);
  EXPECT_EQ(s.backtracks, 0u);
}

TEST(StatsTest, FailedOperationsMakeNoAttempts) {
  StatsTree t;
  t.insert(1);
  const auto before = t.stats();
  EXPECT_FALSE(t.insert(1));  // duplicate: returns before any flag CAS
  EXPECT_FALSE(t.erase(2));   // absent: returns before any flag CAS
  const auto after = t.stats();
  EXPECT_EQ(after.insert_attempts, before.insert_attempts);
  EXPECT_EQ(after.delete_attempts, before.delete_attempts);
}

TEST(StatsTest, CountingLawsUnderContention) {
  StatsTree t;
  std::atomic<std::uint64_t> ok_inserts{0}, ok_erases{0};
  run_threads(6, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 3 + 11);
    for (int i = 0; i < 4000; ++i) {
      const int k = static_cast<int>(rng.next_below(8));  // hot
      if (rng.next_below(2) == 0) {
        ok_inserts += t.insert(k) ? 1 : 0;
      } else {
        ok_erases += t.erase(k) ? 1 : 0;
      }
    }
  });
  const auto s = t.stats();
  // insert_attempts counts every iflag CAS, successful or not. A successful
  // iflag always completes the insert, so the surplus over ok_inserts is
  // exactly the failed iflag CASes — each of which also logged a retry.
  EXPECT_GE(s.insert_attempts, ok_inserts.load());
  EXPECT_LE(s.insert_attempts - ok_inserts.load(), s.insert_retries);
  // Every *successful* dflag resolves to a completed delete or a backtrack;
  // the surplus is failed dflag CASes, each of which also logged a retry.
  EXPECT_GE(s.delete_attempts, ok_erases.load() + s.backtracks);
  EXPECT_LE(s.delete_attempts - (ok_erases.load() + s.backtracks),
            s.delete_retries);
}

TEST(StatsTest, DisjointInteriorChurnNeverHelps) {
  // §1: "Updates to different parts of the tree do not interfere." A delete
  // flags the leaf's grandparent, whose subtree spans only keys adjacent (in
  // sorted order of *present* keys) to the deleted one. So if the tree is
  // prefilled and each thread churns only keys whose neighbours stay present
  // and in-stripe, no update ever touches another thread's flag: helps,
  // retries and backtracks must all be exactly zero. (Building the tree
  // concurrently from empty WOULD conflict — every first insert fights over
  // the ∞₁ leaf — hence the sequential prefill.)
  StatsTree t;
  constexpr int kThreads = 4;
  constexpr int kStripe = 100;
  for (int k = 0; k < kThreads * kStripe; ++k) ASSERT_TRUE(t.insert(k));

  run_threads(kThreads, [&](std::size_t tid) {
    const int base = static_cast<int>(tid) * kStripe;
    for (int round = 0; round < 40; ++round) {
      // Interior keys only: margin of 10 from each stripe boundary.
      for (int i = 10; i < kStripe - 10; i += 2) {
        ASSERT_TRUE(t.erase(base + i));
        ASSERT_TRUE(t.insert(base + i));
      }
    }
  });
  const auto s = t.stats();
  EXPECT_EQ(s.helps, 0u)
      << "conservative helping must not fire without conflicts (§3)";
  EXPECT_EQ(s.backtracks, 0u);
  EXPECT_EQ(s.insert_retries, 0u);
  EXPECT_EQ(s.delete_retries, 0u);
}

// ---------------------------------------------------------------------------
// Per-CasStep protocol breakdown (cas_attempts / cas_failures arrays).
// ---------------------------------------------------------------------------

std::uint64_t at(const TreeStats& s, CasStep step) {
  return s.cas_attempts[static_cast<std::size_t>(step)];
}
std::uint64_t failed(const TreeStats& s, CasStep step) {
  return s.cas_failures[static_cast<std::size_t>(step)];
}

TEST(StatsTest, PerStepCountersSequentialLaws) {
  StatsTree t;
  for (int k = 0; k < 300; ++k) ASSERT_TRUE(t.insert(k));
  for (int k = 0; k < 300; k += 3) ASSERT_TRUE(t.erase(k));
  const auto s = t.stats();
  // Unconteded inserts: exactly one iflag + ichild + iunflag each.
  EXPECT_EQ(at(s, CasStep::kIFlag), 300u);
  EXPECT_EQ(at(s, CasStep::kIChild), 300u);
  EXPECT_EQ(at(s, CasStep::kIUnflag), 300u);
  // Uncontended deletes: one dflag + mark + dchild + dunflag, no backtracks.
  EXPECT_EQ(at(s, CasStep::kDFlag), 100u);
  EXPECT_EQ(at(s, CasStep::kMark), 100u);
  EXPECT_EQ(at(s, CasStep::kDChild), 100u);
  EXPECT_EQ(at(s, CasStep::kDUnflag), 100u);
  EXPECT_EQ(at(s, CasStep::kBacktrack), 0u);
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    EXPECT_EQ(s.cas_failures[i], 0u) << "step " << i;
  }
}

TEST(StatsTest, PerStepCountersRefineLegacyCounters) {
  StatsTree t;
  std::atomic<std::uint64_t> ok_inserts{0}, ok_erases{0};
  run_threads(6, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 5 + 3);
    for (int i = 0; i < 4000; ++i) {
      const int k = static_cast<int>(rng.next_below(8));  // hot
      if (rng.next_below(2) == 0) {
        ok_inserts += t.insert(k) ? 1 : 0;
      } else {
        ok_erases += t.erase(k) ? 1 : 0;
      }
    }
  });
  const auto s = t.stats();
  // The per-step arrays are recorded at the same points as the legacy
  // counters, so the flag rows must agree with them exactly, and the
  // backtracks counter is the number of *successful* backtrack steps.
  EXPECT_EQ(at(s, CasStep::kIFlag), s.insert_attempts);
  EXPECT_EQ(at(s, CasStep::kDFlag), s.delete_attempts);
  EXPECT_EQ(at(s, CasStep::kBacktrack) - failed(s, CasStep::kBacktrack),
            s.backtracks);
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    EXPECT_LE(s.cas_failures[i], s.cas_attempts[i]) << "step " << i;
  }
  // Every successful iflag leads to a completed insert (one ichild), and a
  // failed iflag logs an insert retry.
  EXPECT_EQ(at(s, CasStep::kIFlag) - failed(s, CasStep::kIFlag),
            ok_inserts.load());
  EXPECT_LE(failed(s, CasStep::kIFlag), s.insert_retries);
  // Every completed delete and every backtrack consumed a successful dflag.
  EXPECT_EQ(at(s, CasStep::kDFlag) - failed(s, CasStep::kDFlag),
            ok_erases.load() + s.backtracks);
}

TEST(StatsTest, HandlePerStepCountersFlowIntoShardAndSnapshot) {
  StatsTree t;
  auto h = t.handle();
  for (int k = 0; k < 50; ++k) ASSERT_TRUE(h.insert(k));
  ASSERT_TRUE(h.erase(7));
  const auto local = h.local_stats();
  EXPECT_EQ(at(local, CasStep::kIFlag), 50u);
  EXPECT_EQ(at(local, CasStep::kDFlag), 1u);
  EXPECT_EQ(at(local, CasStep::kDChild), 1u);
  const auto snap = t.stats_snapshot();
  EXPECT_EQ(at(snap, CasStep::kIFlag), 50u);
  EXPECT_EQ(at(snap, CasStep::kDUnflag), 1u);
}

}  // namespace
}  // namespace efrb
